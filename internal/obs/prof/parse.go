package prof

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is one periodic capture: the raw CPU window plus parsed
// top-N summaries of the text profiles. It serializes as JSON both in
// the /debug/prof response and inside flight bundles (CPUPprof is
// base64, the standard encoding/json treatment of []byte).
type Snapshot struct {
	Time time.Time `json:"time"`
	// CPUPprof is the raw gzipped pprof protobuf of one WindowSize CPU
	// capture — feed it to `go tool pprof` for flame graphs; the text
	// summaries below need no tooling.
	CPUPprof    []byte `json:"cpu_pprof,omitempty"`
	CPUWindowNs int64  `json:"cpu_window_ns"`

	Heap      ProfileSummary `json:"heap"`
	Mutex     ProfileSummary `json:"mutex"`
	Block     ProfileSummary `json:"block"`
	Goroutine ProfileSummary `json:"goroutine"`

	// HeapDelta is the in-use movement per frame since the previous ring
	// snapshot (growth first); empty on the first snapshot.
	HeapDelta []FrameDelta `json:"heap_delta,omitempty"`
	// Goroutines is the goroutine count at capture (the goroutine
	// profile's total), retained per snapshot so reports show growth.
	Goroutines int `json:"goroutines"`
}

// rawBytes reports the retained raw profile payload of one snapshot.
func (s *Snapshot) rawBytes() int64 { return int64(len(s.CPUPprof)) }

// ProfileSummary is one parsed debug=1 profile reduced to totals and
// its top-N frames.
type ProfileSummary struct {
	// Total is the profile's primary total: in-use objects (heap),
	// contention events (mutex/block), goroutines (goroutine).
	Total int64 `json:"total"`
	// TotalBytes is the in-use byte total (heap only).
	TotalBytes int64 `json:"total_bytes,omitempty"`
	// Top are the heaviest frames, descending by Value.
	Top []Frame `json:"top,omitempty"`
}

// Frame is one aggregated stack frame in a summary. Attribution is by
// leaf frame: the first non-runtime function of each sample's stack
// (falling back to the true leaf for pure-runtime stacks).
type Frame struct {
	Func string `json:"func"`
	// Value is the primary metric: in-use objects (heap), delay cycles
	// (mutex/block), goroutines (goroutine).
	Value int64 `json:"value"`
	// Bytes is the in-use bytes (heap only).
	Bytes int64 `json:"bytes,omitempty"`
}

// FrameDelta is one frame's heap movement between consecutive
// snapshots.
type FrameDelta struct {
	Func        string `json:"func"`
	DeltaBytes  int64  `json:"delta_bytes"`
	DeltaValue  int64  `json:"delta_objects"`
	NowBytes    int64  `json:"now_bytes"`
	NowValue    int64  `json:"now_objects"`
}

// Capture is a frozen ring, the `profiles` section of a flight bundle
// and the body of GET /debug/prof.
type Capture struct {
	// Ring holds the retained snapshots, oldest first.
	Ring []Snapshot `json:"ring,omitempty"`
	// BreachCPU is the fresh CPU capture taken at freeze time for
	// breach-window triggers (SLO breach, stall, breaker trip, replica
	// lag); nil for periodic-only freezes.
	BreachCPU []byte `json:"breach_cpu_pprof,omitempty"`
	// WindowNs is the CPU window length of every capture in this ring.
	WindowNs int64 `json:"cpu_window_ns,omitempty"`
}

// sample is one parsed debug=1 stack entry.
type sample struct {
	values []int64
	frames []string
}

// SummarizeDebugProfile parses a runtime/pprof debug=1 text profile and
// reduces it to a top-N frame summary. The debug=1 grammar shared by
// the heap, mutex, block, and goroutine profiles is:
//
//	heap profile: 96: 18432 [218: 36864] @ heap/1048576     (header)
//	1: 2048 [5: 10240] @ 0x4a2b10 0x4a0f22                  (heap sample)
//	5 @ 0x4632c1 0x462f18                                   (goroutine sample)
//	18718 1 @ 0x46f2a8 0x46df05                             (mutex sample)
//	#	0x4a2b0f	repro/internal/kb.Build+0x2ef	/root/repo/internal/kb/kb.go:120
//	# labels: {"shard":"1"}                                 (ignored here)
//	# Alloc = 2148304                                       (MemStats tail, ignored)
//
// Values before the '@' are the sample's numbers: for heap,
// inuse_objects: inuse_bytes [alloc_objects: alloc_bytes]; for mutex
// and block, cycles then count; for goroutine, the count. Only the raw
// sampled values are reported (no rate rescaling) — deltas and ratios
// between snapshots of the same process are what the observatory reads.
func SummarizeDebugProfile(name, text string, topN int) ProfileSummary {
	samples := parseDebugProfile(text)
	var sum ProfileSummary
	agg := make(map[string]*Frame)
	order := make([]string, 0, len(samples))
	for _, sm := range samples {
		if len(sm.values) == 0 {
			continue
		}
		value := sm.values[0]
		var bytes int64
		if name == "heap" && len(sm.values) > 1 {
			bytes = sm.values[1]
		}
		sum.Total += value
		sum.TotalBytes += bytes
		fn := leafFunc(sm.frames)
		f := agg[fn]
		if f == nil {
			f = &Frame{Func: fn}
			agg[fn] = f
			order = append(order, fn)
		}
		f.Value += value
		f.Bytes += bytes
	}
	top := make([]Frame, 0, len(agg))
	for _, fn := range order {
		top = append(top, *agg[fn])
	}
	sort.SliceStable(top, func(i, j int) bool {
		if name == "heap" && top[i].Bytes != top[j].Bytes {
			return top[i].Bytes > top[j].Bytes
		}
		if top[i].Value != top[j].Value {
			return top[i].Value > top[j].Value
		}
		return top[i].Func < top[j].Func
	})
	if len(top) > topN {
		top = top[:topN]
	}
	sum.Top = top
	return sum
}

// parseDebugProfile splits a debug=1 text profile into samples. Lines
// opening with a digit start a sample (values up to the '@'); '#'-lines
// with an address column attach frames to the current sample; headers,
// label lines, and the MemStats tail are skipped.
func parseDebugProfile(text string) []sample {
	var samples []sample
	var cur *sample
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			cur = nil
			continue
		}
		switch {
		case trimmed[0] >= '0' && trimmed[0] <= '9':
			head, _, hasAt := strings.Cut(trimmed, "@")
			if !hasAt {
				// "cycles/second=..." and similar preamble.
				continue
			}
			var vals []int64
			for _, tok := range strings.FieldsFunc(head, func(r rune) bool {
				return r == ' ' || r == ':' || r == '[' || r == ']' || r == '\t'
			}) {
				v, err := strconv.ParseInt(tok, 10, 64)
				if err != nil {
					vals = nil
					break
				}
				vals = append(vals, v)
			}
			if vals == nil {
				continue
			}
			samples = append(samples, sample{values: vals})
			cur = &samples[len(samples)-1]
		case trimmed[0] == '#':
			if cur == nil {
				continue
			}
			fields := strings.Fields(trimmed)
			// Frame lines look like: "# 0x4a2b0f pkg.Func+0x2ef file:line".
			if len(fields) < 3 || !strings.HasPrefix(fields[1], "0x") {
				continue
			}
			fn := fields[2]
			if i := strings.LastIndex(fn, "+0x"); i > 0 {
				fn = fn[:i]
			}
			cur.frames = append(cur.frames, fn)
		default:
			// "heap profile:", "goroutine profile:", "--- mutex:" headers.
			cur = nil
		}
	}
	return samples
}

// leafFunc picks the attribution frame of a stack: the first non-runtime
// function, falling back to the leaf, then to "(unknown)" for samples
// whose addresses did not symbolize.
func leafFunc(frames []string) string {
	for _, f := range frames {
		if !strings.HasPrefix(f, "runtime.") && !strings.HasPrefix(f, "runtime/") {
			return f
		}
	}
	if len(frames) > 0 {
		return frames[0]
	}
	return "(unknown)"
}

// heapDelta diffs two consecutive heap summaries frame-by-frame,
// returning the movers sorted by absolute byte growth (largest first),
// capped at topN. Frames present only in prev show as negative deltas.
func heapDelta(prev, now *ProfileSummary, topN int) []FrameDelta {
	type pair struct{ prev, now *Frame }
	merged := make(map[string]*pair)
	order := []string{}
	for i := range prev.Top {
		f := &prev.Top[i]
		merged[f.Func] = &pair{prev: f}
		order = append(order, f.Func)
	}
	for i := range now.Top {
		f := &now.Top[i]
		p := merged[f.Func]
		if p == nil {
			merged[f.Func] = &pair{now: f}
			order = append(order, f.Func)
			continue
		}
		p.now = f
	}
	var out []FrameDelta
	for _, fn := range order {
		p := merged[fn]
		d := FrameDelta{Func: fn}
		if p.prev != nil {
			d.DeltaBytes -= p.prev.Bytes
			d.DeltaValue -= p.prev.Value
		}
		if p.now != nil {
			d.DeltaBytes += p.now.Bytes
			d.DeltaValue += p.now.Value
			d.NowBytes = p.now.Bytes
			d.NowValue = p.now.Value
		}
		if d.DeltaBytes != 0 || d.DeltaValue != 0 {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].DeltaBytes, out[j].DeltaBytes
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Func < out[j].Func
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}
