package prof

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteReport pretty-prints a frozen capture: goroutine growth across
// the ring, the newest snapshot's top frames per profile, and the heap
// deltas of the most recent window. This is the read side of the
// continuous profiler — `qatk prof <url|bundle>`.
func WriteReport(w io.Writer, c *Capture, verbose bool) error {
	if c == nil || len(c.Ring) == 0 {
		_, err := fmt.Fprintln(w, "no profile snapshots captured (sampler disabled or ring empty)")
		return err
	}
	p := &printer{w: w}
	first, last := &c.Ring[0], &c.Ring[len(c.Ring)-1]

	p.head("CONTINUOUS PROFILE — %d snapshots over %s",
		len(c.Ring), last.Time.Sub(first.Time).Round(time.Millisecond))
	p.kv("newest", last.Time.UTC().Format(time.RFC3339))
	p.kv("cpu_window", time.Duration(c.WindowNs).String())
	if len(c.BreachCPU) > 0 {
		p.kv("breach_cpu", fmt.Sprintf("%d bytes (extract with `qatk prof -cpu out.pprof`, then `go tool pprof out.pprof`)", len(c.BreachCPU)))
	}
	if len(last.CPUPprof) > 0 {
		p.kv("newest_cpu", fmt.Sprintf("%d bytes raw pprof", len(last.CPUPprof)))
	}

	p.head("GOROUTINE GROWTH")
	for i := range c.Ring {
		s := &c.Ring[i]
		marker := ""
		if i > 0 {
			if d := s.Goroutines - c.Ring[i-1].Goroutines; d != 0 {
				marker = fmt.Sprintf("  (%+d)", d)
			}
		}
		p.line("  %s  %6d goroutines%s", s.Time.UTC().Format("15:04:05"), s.Goroutines, marker)
	}

	if len(last.HeapDelta) > 0 {
		p.head("HEAP DELTA (newest window)")
		for _, d := range last.HeapDelta {
			p.line("  %+12s  %+6d objs  %s (now %s)",
				byteDelta(d.DeltaBytes), d.DeltaValue, d.Func, byteSize(d.NowBytes))
		}
	} else {
		p.head("HEAP DELTA (newest window)")
		p.line("  no movement between the last two snapshots")
	}

	p.profSection("HEAP IN-USE (top frames)", &last.Heap, true)
	p.profSection("GOROUTINES (top frames)", &last.Goroutine, false)
	p.profSection("MUTEX CONTENTION (top frames, cycles)", &last.Mutex, false)
	p.profSection("BLOCKING (top frames, cycles)", &last.Block, false)

	if verbose && len(c.Ring) > 1 {
		p.head("RING HISTORY")
		for i := range c.Ring {
			s := &c.Ring[i]
			p.line("  %s  heap %s in %d objs, %d goroutines, cpu %d bytes",
				s.Time.UTC().Format(time.RFC3339), byteSize(s.Heap.TotalBytes),
				s.Heap.Total, s.Goroutines, len(s.CPUPprof))
		}
	}
	p.line("")
	return p.err
}

// profSection renders one summary's top frames; heap shows bytes.
func (p *printer) profSection(title string, s *ProfileSummary, heap bool) {
	if len(s.Top) == 0 {
		return
	}
	p.head("%s", title)
	if heap {
		p.kv("total", fmt.Sprintf("%s in %d objects", byteSize(s.TotalBytes), s.Total))
	} else {
		p.kv("total", fmt.Sprintf("%d", s.Total))
	}
	for _, f := range s.Top {
		if heap {
			p.line("  %12s  %8d objs  %s", byteSize(f.Bytes), f.Value, f.Func)
		} else {
			p.line("  %12d  %s", f.Value, f.Func)
		}
	}
}

// printer accumulates the first write error so report code stays linear
// (same shape as the flight report's printer).
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) line(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format+"\n", args...)
}

func (p *printer) head(format string, args ...any) {
	p.line("")
	p.line("== "+format+" ==", args...)
}

func (p *printer) kv(k, v string) { p.line("  %-20s %s", k, v) }

// byteSize renders a byte count with a binary unit.
func byteSize(n int64) string {
	if n < 0 {
		return "-" + byteSize(-n)
	}
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// byteDelta renders a signed byte movement.
func byteDelta(n int64) string {
	s := byteSize(n)
	if n >= 0 && !strings.HasPrefix(s, "+") {
		return "+" + s
	}
	return s
}
