package obs

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a deterministic time source advancing a fixed step per
// read.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.now = f.now.Add(f.step)
	return f.now
}

// TestSpanParentChild: child spans share the root's trace ID and point at
// their parent; roots have no parent and their own trace ID.
func TestSpanParentChild(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(16, WithClock(clk.Now))

	root := tr.Start(nil, "pipeline.run")
	child := tr.Start(root, "pipeline.document")
	grand := tr.Start(child, "engine:tokenizer")
	grand.End(nil)
	child.End(nil)
	root.End(nil)

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	// Finished in reverse start order: grand, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if r.ParentID != 0 || r.TraceID != r.SpanID {
		t.Errorf("root: parent=%d trace=%d span=%d", r.ParentID, r.TraceID, r.SpanID)
	}
	if c.ParentID != r.SpanID || c.TraceID != r.TraceID {
		t.Errorf("child: parent=%d trace=%d, want parent=%d trace=%d", c.ParentID, c.TraceID, r.SpanID, r.TraceID)
	}
	if g.ParentID != c.SpanID || g.TraceID != r.TraceID {
		t.Errorf("grandchild: parent=%d trace=%d", g.ParentID, g.TraceID)
	}
	for _, s := range spans {
		if s.Duration <= 0 {
			t.Errorf("span %q has non-positive duration %v", s.Name, s.Duration)
		}
	}
}

// TestRingBufferEviction: the ring keeps only the newest capacity spans,
// oldest first, while the aggregation counts everything.
func TestRingBufferEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Second}
	tr := NewTracer(3, WithClock(clk.Now))
	for i := 0; i < 5; i++ {
		tr.Start(nil, "engine:tokenizer").End(nil)
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	// SpanIDs are monotonic: eviction dropped 1 and 2, kept 3..5 in order.
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].SpanID != want {
			t.Errorf("spans[%d].SpanID = %d, want %d", i, spans[i].SpanID, want)
		}
	}
	stats := tr.Stats()
	if len(stats) != 1 || stats[0].Count != 5 {
		t.Fatalf("aggregation lost evicted spans: %+v", stats)
	}
}

// TestStatsReproduceTimedTotals: the per-name aggregation is the old
// pipeline.Timed measurement — count and summed wall-clock per name —
// with errors tallied alongside.
func TestStatsReproduceTimedTotals(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Second}
	tr := NewTracer(2, WithClock(clk.Now)) // smaller than the span count: aggregation must not care
	boom := errors.New("bad doc")
	for i := 0; i < 4; i++ {
		var err error
		if i == 3 {
			err = boom
		}
		tr.Start(nil, "engine:annotator").End(err)
	}
	tr.Start(nil, "engine:tokenizer").End(nil)

	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Each span lasts exactly one fake-clock step; annotator has 4.
	if stats[0].Name != "engine:annotator" || stats[0].Count != 4 ||
		stats[0].Total != 4*time.Second || stats[0].Errors != 1 {
		t.Errorf("annotator stat = %+v", stats[0])
	}
	if stats[1].Name != "engine:tokenizer" || stats[1].Count != 1 || stats[1].Total != time.Second {
		t.Errorf("tokenizer stat = %+v", stats[1])
	}
	if per := stats[0].Per(); per != time.Second {
		t.Errorf("per-span mean = %v, want 1s", per)
	}

	tr.Reset()
	if len(tr.Snapshot()) != 0 || len(tr.Stats()) != 0 {
		t.Error("Reset left state behind")
	}
}

// TestNilTracerIsNoOp: nil tracer and nil span cost nothing and crash
// nothing — the disabled-observability contract.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "anything", L("k", "v"))
	if s != nil {
		t.Fatal("nil tracer returned a live span")
	}
	s.SetAttr("k", "v")
	s.End(errors.New("ignored"))
	if s.TraceID() != 0 || s.SpanID() != 0 {
		t.Error("nil span has identity")
	}
	if tr.Snapshot() != nil || tr.Stats() != nil {
		t.Error("nil tracer returned data")
	}
	tr.Reset()
}

// TestSpanAttrsAndError: attributes and the error string survive into the
// recorded span data.
func TestSpanAttrsAndError(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTracer(4, WithClock(clk.Now))
	s := tr.Start(nil, "http.request", L("method", "GET"))
	s.SetAttr("path", "/bundle/R1")
	s.End(errors.New("boom"))
	got := tr.Snapshot()[0]
	if len(got.Attrs) != 2 || got.Attrs[0] != L("method", "GET") || got.Attrs[1] != L("path", "/bundle/R1") {
		t.Errorf("attrs = %+v", got.Attrs)
	}
	if got.Err != "boom" {
		t.Errorf("err = %q", got.Err)
	}
}
