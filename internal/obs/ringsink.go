package obs

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
)

// RingSink is a Logger destination built for black-box recording: it
// retains the most recent lines in a fixed ring (so a diagnostic bundle
// can include the log tail at the moment of an anomaly) and forwards
// lines to an optional underlying writer through a bounded queue drained
// by a background goroutine. Forwarding never blocks the caller: when the
// queue is full — an unresponsive disk, a wedged pipe — the line is
// dropped from the forward path and counted, while the ring still keeps
// it. A slow or stuck writer therefore costs log lines, never latency on
// the serving or pipeline hot path.
type RingSink struct {
	mu     sync.Mutex
	ring   []string //qatk:guardedby mu
	next   int      //qatk:guardedby mu
	count  int      //qatk:guardedby mu
	closed bool     //qatk:guardedby mu

	dropped atomic.Uint64
	counter *Counter // optional drop counter (obs_log_dropped_total)

	w    io.Writer
	out  chan string
	done chan struct{}
}

// NewRingSink builds a sink retaining the last capacity lines (capacity
// < 1 is raised to 1). w receives every line that fits the forward queue;
// nil disables forwarding entirely (ring-only recording).
func NewRingSink(w io.Writer, capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	s := &RingSink{ring: make([]string, capacity), w: w}
	if w != nil {
		s.out = make(chan string, capacity)
		s.done = make(chan struct{})
		go s.forward()
	}
	return s
}

// Instrument attaches a counter incremented once per dropped line.
func (s *RingSink) Instrument(dropped *Counter) {
	s.mu.Lock()
	s.counter = dropped
	s.mu.Unlock()
}

// forward drains the queue into the underlying writer. Write errors are
// ignored: the sink's contract is best-effort forwarding, and the ring
// copy survives regardless.
func (s *RingSink) forward() {
	defer close(s.done)
	for line := range s.out {
		_, _ = io.WriteString(s.w, line)
	}
}

// Write implements io.Writer for Logger. It never blocks and never
// returns an error. The contents of p are copied before retention, as
// the io.Writer contract requires.
func (s *RingSink) Write(p []byte) (int, error) {
	line := string(p)
	s.mu.Lock()
	s.ring[s.next] = strings.TrimRight(line, "\n")
	s.next = (s.next + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
	forward := s.out != nil && !s.closed
	counter := s.counter
	if forward {
		select {
		case s.out <- line:
		default:
			s.dropped.Add(1)
			counter.Inc()
		}
	}
	s.mu.Unlock()
	return len(p), nil
}

// Recent returns up to n of the most recent lines, oldest first (without
// trailing newlines). n <= 0 means all retained lines.
func (s *RingSink) Recent(n int) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > s.count {
		n = s.count
	}
	out := make([]string, 0, n)
	start := s.next - n
	for i := 0; i < n; i++ {
		out = append(out, s.ring[(start+i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Dropped reports how many lines the forward path has dropped because the
// queue was full.
func (s *RingSink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close stops forwarding after draining the queued lines and waits for
// the background writer to finish. Lines written after Close stay in the
// ring but are no longer forwarded. Safe to call on a ring-only sink.
func (s *RingSink) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.done != nil {
			<-s.done
		}
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.out != nil {
		close(s.out)
		<-s.done
	}
}
