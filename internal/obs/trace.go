package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Lightweight structured tracing. A Tracer hands out spans (trace ID,
// parent, name, start, duration, attributes, error) and keeps two views
// of every finished span: a fixed-capacity ring buffer of recent spans
// for inspection, and a per-name aggregation (count, total duration,
// errors) that survives eviction — the aggregation is what rebuilds the
// per-engine timing report the old pipeline.Timed wrapper produced,
// exactly, no matter how many documents streamed through.

// DefaultMaxSpanNames bounds the per-name aggregation: spans with names
// beyond the cap still enter the ring but create no new stat entry. The
// cap exists because span names are caller-controlled strings — a caller
// interpolating an ID into a span name would otherwise grow the stats
// map without bound for the life of the process.
const DefaultMaxSpanNames = 512

// MetricSpanNamesDroppedTotal counts spans whose name overflowed the
// per-name aggregation cap (the span itself is still recorded in the
// ring; only its stat line is lost).
const MetricSpanNamesDroppedTotal = "obs_span_names_dropped_total"

// SpanData is one finished (or in-flight) span.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for root spans
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Label
	Err      string // "" on success
}

// SpanStat aggregates every finished span of one name.
type SpanStat struct {
	Name   string
	Count  int
	Total  time.Duration
	Errors int
}

// Per reports the mean duration per span (0 when no spans finished).
func (s SpanStat) Per() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Tracer records spans. A nil *Tracer is disabled: Start returns a nil
// span and every span method is a no-op, so traced hot paths cost two
// nil checks when tracing is off.
type Tracer struct {
	clock  func() time.Time
	nextID atomic.Uint64
	// maxNames bounds the stats map; set at construction, immutable after.
	maxNames int

	mu           sync.Mutex
	ring         []SpanData           //qatk:guardedby mu
	next         int                  //qatk:guardedby mu
	count        int                  //qatk:guardedby mu — spans currently in the ring
	stats        map[string]*SpanStat //qatk:guardedby mu
	namesDropped *Counter             //qatk:guardedby mu — nil until Instrument
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithClock injects the time source (tests and deterministic callers
// substitute a fake; default time.Now).
func WithClock(clock func() time.Time) TracerOption {
	return func(t *Tracer) { t.clock = clock }
}

// WithMaxSpanNames overrides the distinct-span-name cap on the per-name
// aggregation (default DefaultMaxSpanNames; values < 1 keep the default).
func WithMaxSpanNames(n int) TracerOption {
	return func(t *Tracer) {
		if n >= 1 {
			t.maxNames = n
		}
	}
}

// NewTracer builds a tracer whose ring buffer holds up to capacity
// finished spans (older spans are evicted first; capacity < 1 is raised
// to 1). The per-name aggregation is unbounded and unaffected by
// eviction.
func NewTracer(capacity int, opts ...TracerOption) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{
		clock:    time.Now,
		ring:     make([]SpanData, capacity),
		stats:    make(map[string]*SpanStat),
		maxNames: DefaultMaxSpanNames,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Instrument wires the overflow counter (normally the registry's
// MetricSpanNamesDroppedTotal series) so name-cap drops are visible in
// the exposition. Nil-safe on both sides.
func (t *Tracer) Instrument(dropped *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.namesDropped = dropped
	t.mu.Unlock()
}

// Span is one in-flight operation. A nil *Span is a no-op.
type Span struct {
	tracer *Tracer
	data   SpanData
}

// Start opens a span under parent (nil parent starts a new trace) and
// returns it; call End to record it. A nil tracer returns a nil span.
func (t *Tracer) Start(parent *Span, name string, attrs ...Label) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, data: SpanData{
		SpanID: t.nextID.Add(1),
		Name:   name,
		Start:  t.clock(),
	}}
	if len(attrs) > 0 {
		s.data.Attrs = attrs
	}
	if parent != nil {
		s.data.TraceID = parent.data.TraceID
		s.data.ParentID = parent.data.SpanID
	} else {
		s.data.TraceID = s.data.SpanID
	}
	return s
}

// SetAttr attaches one attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.data.Attrs = append(s.data.Attrs, Label{Key: key, Value: value})
}

// TraceID returns the span's trace identifier (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.TraceID
}

// SpanID returns the span's identifier (0 for a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// End finishes the span, stamping its duration and error, and records it
// in the tracer's ring buffer and aggregation.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	t := s.tracer
	s.data.Duration = t.clock().Sub(s.data.Start)
	if err != nil {
		s.data.Err = err.Error()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = s.data
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
	st, ok := t.stats[s.data.Name]
	if !ok {
		// Cap distinct names: a new name past the cap keeps its ring entry
		// but gets no stat line (evict-none — established names keep
		// aggregating), and the overflow is counted so it is diagnosable.
		if len(t.stats) >= t.maxNames {
			t.namesDropped.Inc()
			return
		}
		st = &SpanStat{Name: s.data.Name}
		t.stats[s.data.Name] = st
	}
	st.Count++
	st.Total += s.data.Duration
	if err != nil {
		st.Errors++
	}
}

// Snapshot returns the buffered finished spans, oldest first.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, t.count)
	start := t.next - t.count
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Stats returns the per-name aggregation over every finished span (not
// just the buffered ones), sorted by descending total duration, ties by
// name.
func (t *Tracer) Stats() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStat, 0, len(t.stats))
	for _, st := range t.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset clears the ring buffer and the aggregation.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.count = 0, 0
	t.stats = make(map[string]*SpanStat)
}
