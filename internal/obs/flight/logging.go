package flight

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// NewLogging assembles the command-line logging stack shared by questd
// and qatk: severity parsed from the -log-level flag value, the
// destination from -log-file (stderr when empty; opened append-only so
// restarts never truncate history), and an obs.RingSink in between so
// (a) the flight recorder retains the newest lines for its diagnostic
// bundles and (b) a wedged destination drops-and-counts instead of
// stalling the caller. The returned func closes the sink and, when one
// was opened, the destination file.
func NewLogging(level, file string) (*obs.Logger, *obs.RingSink, func(), error) {
	lvl, err := obs.ParseLevel(level)
	if err != nil {
		return nil, nil, nil, err
	}
	var w io.Writer = os.Stderr
	cleanup := func() {}
	if file != "" {
		f, err := os.OpenFile(file, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("flight: open log file: %w", err)
		}
		w = f
		cleanup = func() { f.Close() }
	}
	sink := obs.NewRingSink(w, DefaultLogLines)
	closeAll := func() { sink.Close(); cleanup() }
	return obs.NewLogger(sink, lvl), sink, closeAll, nil
}
