package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/reqlog"
)

// BundleSchema versions the bundle layout; qatk diagnose refuses bundles
// from a future schema rather than misreading them.
const BundleSchema = 1

// MetricCapture is one timestamped reading of the full metric registry,
// parsed from its own text exposition into flat series values keyed by
// "name{labels}". Consecutive captures are the "metric deltas" a bundle
// carries: the reader diffs them to show what moved in the window before
// the anomaly.
type MetricCapture struct {
	Time   time.Time          `json:"time"`
	Series map[string]float64 `json:"series"`
}

// MemSummary is the slice of runtime.MemStats worth keeping in a bundle.
type MemSummary struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	HeapObjects     uint64 `json:"heap_objects"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	SysBytes        uint64 `json:"sys_bytes"`
	NumGC           uint32 `json:"num_gc"`
	PauseTotalNs    uint64 `json:"pause_total_ns"`
}

// Bundle is one diagnostic snapshot: everything an on-call engineer needs
// to reconstruct the state of the process at the moment a trigger fired.
// It serializes two ways — a timestamped directory of focused files
// (WriteDir) for the flight directory, and a single JSON document
// (MarshalJSON via the plain struct) for the /debug/bundle download.
// ReadBundle accepts both.
type Bundle struct {
	Schema      int               `json:"schema"`
	Reason      string            `json:"reason"`
	Time        time.Time         `json:"time"`
	Details     map[string]string `json:"details,omitempty"`
	Build       obs.BuildIdentity `json:"build"`
	Goroutines  int               `json:"goroutines"`
	DroppedLogs uint64            `json:"dropped_logs"`
	MemStats    MemSummary        `json:"mem_stats"`

	Spans         []obs.SpanData  `json:"spans,omitempty"`
	SpanStats     []obs.SpanStat  `json:"span_stats,omitempty"`
	Logs          []string        `json:"logs,omitempty"`
	Metrics       []MetricCapture `json:"metrics,omitempty"`
	GoroutineDump string          `json:"goroutine_dump,omitempty"`
	// Extras carries per-subsystem state from registered info providers
	// (e.g. reldb WAL/sync stats), keyed provider name → field → value.
	Extras map[string]map[string]string `json:"extras,omitempty"`
	// Requests freezes the tail-sampled wide-event ring (newest first) —
	// the same records /debug/requests serves, so `qatk requests` reads a
	// bundle and a live server identically.
	Requests []reqlog.Event `json:"requests,omitempty"`
	// Profiles freezes the continuous profiler's snapshot ring (plus a
	// fresh breach-window CPU capture for breach triggers) — the same
	// Capture /debug/prof serves, so `qatk prof` reads a bundle and a
	// live server identically. Additive since PR 10: bundles written
	// before it simply lack the section, and ReadBundle leaves it nil.
	Profiles *prof.Capture `json:"profiles,omitempty"`
}

// manifest is the directory form's header file: the scalar fields of a
// Bundle without the bulky sections, which get their own files.
type manifest struct {
	Schema      int               `json:"schema"`
	Reason      string            `json:"reason"`
	Time        time.Time         `json:"time"`
	Details     map[string]string `json:"details,omitempty"`
	Build       obs.BuildIdentity `json:"build"`
	Goroutines  int               `json:"goroutines"`
	DroppedLogs uint64            `json:"dropped_logs"`
	MemStats    MemSummary        `json:"mem_stats"`
}

// spansFile groups the two span views into one file.
type spansFile struct {
	Spans     []obs.SpanData `json:"spans,omitempty"`
	SpanStats []obs.SpanStat `json:"span_stats,omitempty"`
}

// Bundle directory file names.
const (
	manifestFile   = "manifest.json"
	spansFileName  = "spans.json"
	logsFileName   = "logs.txt"
	metricsFile    = "metrics.json"
	goroutinesFile = "goroutines.txt"
	extrasFile     = "extras.json"
	requestsFile   = "requests.json"
	profilesFile   = "profiles.json"
)

// DirName renders the timestamped directory name for this bundle:
// bundle-<UTC compact RFC3339>-<reason>.
func (b *Bundle) DirName() string {
	return "bundle-" + b.Time.UTC().Format("20060102T150405Z") + "-" + sanitizeReason(b.Reason)
}

// sanitizeReason maps a trigger reason onto a filesystem-safe slug.
func sanitizeReason(reason string) string {
	var sb strings.Builder
	for _, r := range reason {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r + ('a' - 'A'))
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "unknown"
	}
	return sb.String()
}

// WriteDir materializes the bundle as a directory under parent, creating
// parent if needed, and returns the bundle directory path. If the
// timestamped name collides (two triggers in the same second), a numeric
// suffix disambiguates.
func (b *Bundle) WriteDir(parent string) (string, error) {
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return "", fmt.Errorf("flight: create flight dir: %w", err)
	}
	dir := filepath.Join(parent, b.DirName())
	for i := 2; ; i++ {
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("flight: create bundle dir: %w", err)
		}
		dir = filepath.Join(parent, b.DirName()+"-"+strconv.Itoa(i))
	}
	m := manifest{
		Schema: b.Schema, Reason: b.Reason, Time: b.Time, Details: b.Details,
		Build: b.Build, Goroutines: b.Goroutines, DroppedLogs: b.DroppedLogs,
		MemStats: b.MemStats,
	}
	if err := writeJSONFile(filepath.Join(dir, manifestFile), m); err != nil {
		return "", err
	}
	if err := writeJSONFile(filepath.Join(dir, spansFileName), spansFile{Spans: b.Spans, SpanStats: b.SpanStats}); err != nil {
		return "", err
	}
	if err := writeJSONFile(filepath.Join(dir, metricsFile), b.Metrics); err != nil {
		return "", err
	}
	if len(b.Extras) > 0 {
		if err := writeJSONFile(filepath.Join(dir, extrasFile), b.Extras); err != nil {
			return "", err
		}
	}
	if len(b.Requests) > 0 {
		if err := writeJSONFile(filepath.Join(dir, requestsFile), b.Requests); err != nil {
			return "", err
		}
	}
	if b.Profiles != nil {
		if err := writeJSONFile(filepath.Join(dir, profilesFile), b.Profiles); err != nil {
			return "", err
		}
	}
	logs := strings.Join(b.Logs, "\n")
	if logs != "" {
		logs += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, logsFileName), []byte(logs), 0o644); err != nil {
		return "", fmt.Errorf("flight: write %s: %w", logsFileName, err)
	}
	if err := os.WriteFile(filepath.Join(dir, goroutinesFile), []byte(b.GoroutineDump), 0o644); err != nil {
		return "", fmt.Errorf("flight: write %s: %w", goroutinesFile, err)
	}
	return dir, nil
}

// writeJSONFile writes v as indented JSON.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("flight: encode %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("flight: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// ReadBundle loads a bundle from either serialized form: a bundle
// directory written by WriteDir, or a single JSON file downloaded from
// /debug/bundle.
func ReadBundle(path string) (*Bundle, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("flight: open bundle: %w", err)
	}
	if !info.IsDir() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("flight: read bundle: %w", err)
		}
		var b Bundle
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("flight: parse bundle %s: %w", path, err)
		}
		if b.Schema > BundleSchema {
			return nil, fmt.Errorf("flight: bundle %s has schema %d, newer than this reader (%d)", path, b.Schema, BundleSchema)
		}
		return &b, nil
	}

	var m manifest
	if err := readJSONFile(filepath.Join(path, manifestFile), &m); err != nil {
		return nil, err
	}
	if m.Schema > BundleSchema {
		return nil, fmt.Errorf("flight: bundle %s has schema %d, newer than this reader (%d)", path, m.Schema, BundleSchema)
	}
	b := &Bundle{
		Schema: m.Schema, Reason: m.Reason, Time: m.Time, Details: m.Details,
		Build: m.Build, Goroutines: m.Goroutines, DroppedLogs: m.DroppedLogs,
		MemStats: m.MemStats,
	}
	var sf spansFile
	if err := readJSONFile(filepath.Join(path, spansFileName), &sf); err == nil {
		b.Spans, b.SpanStats = sf.Spans, sf.SpanStats
	}
	_ = readJSONFile(filepath.Join(path, metricsFile), &b.Metrics)
	_ = readJSONFile(filepath.Join(path, extrasFile), &b.Extras)
	_ = readJSONFile(filepath.Join(path, requestsFile), &b.Requests)
	_ = readJSONFile(filepath.Join(path, profilesFile), &b.Profiles)
	if data, err := os.ReadFile(filepath.Join(path, logsFileName)); err == nil && len(data) > 0 {
		b.Logs = strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	}
	if data, err := os.ReadFile(filepath.Join(path, goroutinesFile)); err == nil {
		b.GoroutineDump = string(data)
	}
	return b, nil
}

// readJSONFile decodes one JSON file into v.
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("flight: read %s: %w", filepath.Base(path), err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("flight: parse %s: %w", filepath.Base(path), err)
	}
	return nil
}

// parseProm parses the registry's own text exposition into flat series
// values keyed "name{labels}" (comment lines skipped). The format is the
// deterministic output of obs.Registry.WriteProm, so the parser can be
// simple: the value is everything after the last space.
func parseProm(text string) map[string]float64 {
	series := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		series[line[:i]] = v
	}
	return series
}

// MetricDelta is one series' movement between the oldest and newest
// capture in a bundle.
type MetricDelta struct {
	Series string
	Delta  float64
	Now    float64
}

// Deltas diffs the oldest against the newest metric capture, returning
// the series that moved, sorted by series name. With fewer than two
// captures it returns nil.
func (b *Bundle) Deltas() []MetricDelta {
	if len(b.Metrics) < 2 {
		return nil
	}
	first, last := b.Metrics[0].Series, b.Metrics[len(b.Metrics)-1].Series
	var out []MetricDelta
	for name, now := range last {
		if d := now - first[name]; d != 0 {
			out = append(out, MetricDelta{Series: name, Delta: d, Now: now})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Series < out[j].Series })
	return out
}

// Handler serves on-demand capture + download: GET captures a bundle
// right now (reason "on_demand", rate limit bypassed), persists it to the
// flight directory when one is configured, and answers with the complete
// bundle as a single JSON document. A nil recorder answers 503 so probes
// can tell "disabled" from "broken".
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
			return
		}
		b, dir, err := r.CaptureNow("on_demand", obs.L("remote", req.RemoteAddr))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			`attachment; filename="`+b.DirName()+`.json"`)
		if dir != "" {
			w.Header().Set("X-Flight-Bundle-Dir", dir)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(b)
	})
}
