package flight

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a hand-advanced time source shared by recorder and tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// newTestRecorder builds a recorder with every source wired, a fake
// clock, and rate limiting effectively off unless the test opts in.
func newTestRecorder(t *testing.T, mutate func(*Config)) (*Recorder, *fakeClock, *obs.Registry, string) {
	t.Helper()
	dir := t.TempDir()
	clock := newFakeClock()
	reg := obs.NewRegistry().WithClock(clock.Now)
	cfg := Config{
		Dir:      dir,
		Clock:    clock.Now,
		Registry: reg,
		Tracer:   obs.NewTracer(16, obs.WithClock(clock.Now)),
		Logs:     obs.NewRingSink(nil, 32),
		Logger:   obs.NewLogger(io.Discard, obs.LevelError),
		// Per-test triggers opt in; keep the others out of the way.
		SLOTarget:      0,
		StallDeadline:  time.Hour,
		GoroutineLimit: -1,
		MinInterval:    -1, // no rate limit
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r := New(cfg)
	t.Cleanup(r.Close)
	return r, clock, reg, dir
}

// listBundles returns the bundle directory names under dir, sorted by
// the directory listing order (names sort chronologically).
func listBundles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "bundle-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestSLOWatchdogTriggersAfterConsecutiveBreaches drives the sliding
// window with an injected clock: two over-budget windows in a row fire
// exactly one slo_breach bundle, and a healthy window resets the streak.
func TestSLOWatchdogTriggersAfterConsecutiveBreaches(t *testing.T) {
	r, clock, reg, dir := newTestRecorder(t, func(c *Config) {
		c.SLOTarget = 100 * time.Millisecond
		c.SLOWindow = 10 * time.Second
		c.SLOBreaches = 2
		c.SLOMinSamples = 1
	})
	r.Tick(clock.Now()) // arm the first window

	// Window 1: slow. Breach streak 1, no bundle yet.
	for i := 0; i < 20; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second))
	if got := listBundles(t, dir); len(got) != 0 {
		t.Fatalf("bundle fired after a single breach window: %v", got)
	}
	if got := reg.Counter(MetricSLOBreachesTotal).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricSLOBreachesTotal, got)
	}

	// Window 2: fast. Streak resets.
	r.ObserveLatency(time.Millisecond)
	r.Tick(clock.Advance(10 * time.Second))

	// Windows 3+4: slow twice in a row → exactly one bundle.
	for i := 0; i < 20; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second))
	for i := 0; i < 20; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second))

	bundles := listBundles(t, dir)
	if len(bundles) != 1 || !strings.HasSuffix(bundles[0], "-slo_breach") {
		t.Fatalf("bundles = %v, want one slo_breach", bundles)
	}
	b, err := ReadBundle(filepath.Join(dir, bundles[0]))
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != ReasonSLOBreach {
		t.Errorf("reason = %q", b.Reason)
	}
	if b.Details["p99_seconds"] != "0.5" {
		t.Errorf("p99 detail = %q, want 0.5", b.Details["p99_seconds"])
	}
	if got := reg.Counter(MetricSLOBreachesTotal).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricSLOBreachesTotal, got)
	}
}

// TestSLOQuietWindowNeitherBreachesNorResets: a window with too few
// samples is skipped — the breach streak carries across it.
func TestSLOQuietWindowNeitherBreachesNorResets(t *testing.T) {
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.SLOTarget = 100 * time.Millisecond
		c.SLOWindow = 10 * time.Second
		c.SLOBreaches = 2
		c.SLOMinSamples = 5
	})
	r.Tick(clock.Now())

	for i := 0; i < 10; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second)) // breach, streak 1

	r.ObserveLatency(time.Millisecond) // 1 sample < SLOMinSamples: quiet
	r.Tick(clock.Advance(10 * time.Second))

	for i := 0; i < 10; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second)) // breach, streak 2 → trigger

	if got := listBundles(t, dir); len(got) != 1 {
		t.Fatalf("bundles = %v, want one (quiet window must not reset the streak)", got)
	}
}

// TestStallGuardFiresOnceAndBeatRearms: a guard with no heartbeat past
// the deadline fires one stall bundle (not one per Tick); a Beat re-arms
// it; Stop disarms it for good.
func TestStallGuardFiresOnceAndBeatRearms(t *testing.T) {
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.StallDeadline = time.Minute
	})
	g := r.Guard("pipeline.run")

	r.Tick(clock.Advance(30 * time.Second))
	if got := listBundles(t, dir); len(got) != 0 {
		t.Fatalf("stall fired before the deadline: %v", got)
	}

	r.Tick(clock.Advance(45 * time.Second)) // 75s since heartbeat
	r.Tick(clock.Advance(10 * time.Second)) // still stalled — must not re-fire
	bundles := listBundles(t, dir)
	if len(bundles) != 1 || !strings.HasSuffix(bundles[0], "-stall") {
		t.Fatalf("bundles = %v, want exactly one stall", bundles)
	}
	b, err := ReadBundle(filepath.Join(dir, bundles[0]))
	if err != nil {
		t.Fatal(err)
	}
	if b.Details["guard"] != "pipeline.run" {
		t.Errorf("guard detail = %q", b.Details["guard"])
	}

	g.Beat() // progress → re-armed
	r.Tick(clock.Advance(90 * time.Second))
	if got := listBundles(t, dir); len(got) != 2 {
		t.Fatalf("re-armed guard did not fire again: %v", got)
	}

	g.Stop()
	r.Tick(clock.Advance(time.Hour))
	if got := listBundles(t, dir); len(got) != 2 {
		t.Fatalf("stopped guard fired: %v", got)
	}
}

// TestGoroutineSpikeLatches: crossing the limit fires once; staying above
// it stays latched; dipping below and crossing again fires again.
func TestGoroutineSpikeLatches(t *testing.T) {
	var n int
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.GoroutineLimit = 100
		c.Goroutines = func() int { return n }
	})
	n = 50
	r.Tick(clock.Advance(time.Second))
	n = 150
	r.Tick(clock.Advance(time.Second))
	r.Tick(clock.Advance(time.Second)) // latched
	if got := listBundles(t, dir); len(got) != 1 || !strings.HasSuffix(got[0], "-goroutine_spike") {
		t.Fatalf("bundles = %v, want one goroutine_spike", got)
	}
	n = 50
	r.Tick(clock.Advance(time.Second))
	n = 200
	r.Tick(clock.Advance(time.Second))
	if got := listBundles(t, dir); len(got) != 2 {
		t.Fatalf("bundles after re-spike = %v, want 2", got)
	}
}

// TestTriggerRateLimitAndOnDemandBypass: anomaly triggers inside
// MinInterval are suppressed and counted; CaptureNow ignores the limit.
func TestTriggerRateLimitAndOnDemandBypass(t *testing.T) {
	r, clock, reg, dir := newTestRecorder(t, func(c *Config) {
		c.MinInterval = time.Minute
	})
	if d := r.Trigger(ReasonPanic, obs.L("value", "boom")); d == "" {
		t.Fatal("first trigger suppressed")
	}
	clock.Advance(10 * time.Second)
	if d := r.Trigger(ReasonPanic); d != "" {
		t.Fatal("second trigger inside MinInterval was not suppressed")
	}
	if got := reg.Counter(MetricFlightSuppressedTotal).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricFlightSuppressedTotal, got)
	}
	if _, _, err := r.CaptureNow(ReasonOnDemand); err != nil {
		t.Fatalf("CaptureNow during rate limit: %v", err)
	}
	if got := listBundles(t, dir); len(got) != 2 {
		t.Fatalf("bundles = %v, want panic + on_demand", got)
	}
	clock.Advance(time.Minute)
	if d := r.Trigger(ReasonCircuitBreaker); d == "" {
		t.Fatal("trigger after MinInterval elapsed was suppressed")
	}
	if got := reg.Counter(MetricFlightBundlesTotal, obs.L("reason", ReasonPanic)).Value(); got != 1 {
		t.Errorf("bundles{reason=panic} = %d, want 1", got)
	}
}

// TestBundleRoundTripDirAndJSON: a captured bundle survives both
// serializations — the flight directory and the single JSON download —
// with spans, logs, metrics, and extras intact.
func TestBundleRoundTripDirAndJSON(t *testing.T) {
	r, clock, reg, dir := newTestRecorder(t, func(c *Config) {})
	r.AddInfo("reldb", func() map[string]string {
		return map[string]string{"wal_bytes": "4096", "sync_policy": "interval"}
	})
	reg.Counter("qatk_pipeline_documents_total").Add(5)
	sp := r.cfg.Tracer.Start(nil, "pipeline.run")
	clock.Advance(20 * time.Millisecond)
	sp.End(nil)
	r.cfg.Logs.Write([]byte("ts=0 level=info msg=hello\n"))
	r.Tick(clock.Advance(time.Second))
	reg.Counter("qatk_pipeline_documents_total").Add(3)
	r.Tick(clock.Advance(time.Second))

	b, bdir, err := r.CaptureNow(ReasonOnDemand, obs.L("remote", "test"))
	if err != nil {
		t.Fatal(err)
	}
	if bdir == "" {
		t.Fatal("no bundle dir written")
	}

	fromDir, err := ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "download.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadBundle(jsonPath)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string]*Bundle{"dir": fromDir, "json": fromJSON} {
		if got.Reason != ReasonOnDemand || got.Details["remote"] != "test" {
			t.Errorf("%s: reason/details = %q/%v", name, got.Reason, got.Details)
		}
		if len(got.Spans) != 1 || got.Spans[0].Name != "pipeline.run" {
			t.Errorf("%s: spans = %+v", name, got.Spans)
		}
		if len(got.Logs) != 1 || !strings.Contains(got.Logs[0], "msg=hello") {
			t.Errorf("%s: logs = %v", name, got.Logs)
		}
		if got.Extras["reldb"]["wal_bytes"] != "4096" {
			t.Errorf("%s: extras = %v", name, got.Extras)
		}
		if len(got.Metrics) < 2 {
			t.Fatalf("%s: %d metric captures, want >= 2", name, len(got.Metrics))
		}
		deltas := got.Deltas()
		var found bool
		for _, d := range deltas {
			if d.Series == "qatk_pipeline_documents_total" && d.Delta == 3 && d.Now == 8 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: deltas missing documents_total +3 (got %+v)", name, deltas)
		}
	}
}

// TestReadBundleRejectsNewerSchema guards against silently misreading a
// bundle written by a future build.
func TestReadBundleRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "reason": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(path); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("err = %v, want schema rejection", err)
	}
}

// TestRetentionPrunesOldest: MaxBundles is enforced with oldest-first
// deletion.
func TestRetentionPrunesOldest(t *testing.T) {
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.MaxBundles = 3
	})
	for i := 0; i < 5; i++ {
		if _, _, err := r.CaptureNow(ReasonOnDemand); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
	}
	bundles := listBundles(t, dir)
	if len(bundles) != 3 {
		t.Fatalf("retained %d bundles, want 3: %v", len(bundles), bundles)
	}
	// The survivors are the newest three (names sort chronologically).
	first := "bundle-" + time.Unix(1700000000, 0).UTC().Add(2*time.Second).Format("20060102T150405Z")
	if !strings.HasPrefix(bundles[0], first) {
		t.Errorf("oldest survivor %q, want prefix %q", bundles[0], first)
	}
}

// TestHandlerServesParseableBundle: GET /debug/bundle answers a JSON
// document ReadBundle-compatible, with the attachment headers set.
func TestHandlerServesParseableBundle(t *testing.T) {
	r, _, _, dir := newTestRecorder(t, func(c *Config) {})
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var b Bundle
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatalf("response not a bundle: %v", err)
	}
	if b.Reason != ReasonOnDemand || b.Details["remote"] == "" {
		t.Errorf("reason/remote = %q/%q", b.Reason, b.Details["remote"])
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "attachment") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	if got := rec.Header().Get("X-Flight-Bundle-Dir"); !strings.HasPrefix(got, dir) {
		t.Errorf("X-Flight-Bundle-Dir = %q, want under %q", got, dir)
	}
	// Nil recorder: disabled, not broken.
	rec = httptest.NewRecorder()
	(*Recorder)(nil).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bundle", nil))
	if rec.Code != 503 {
		t.Errorf("nil recorder status = %d, want 503", rec.Code)
	}
}

// TestWriteReport smoke-tests the incident report against a real capture:
// every section header renders and the trigger details appear.
func TestWriteReport(t *testing.T) {
	r, clock, reg, _ := newTestRecorder(t, func(c *Config) {})
	r.AddInfo("reldb", func() map[string]string { return map[string]string{"sync_policy": "always"} })
	reg.Counter("qatk_pipeline_documents_total").Add(2)
	r.cfg.Logs.Write([]byte("ts=0 level=error msg=boom\n"))
	sp := r.cfg.Tracer.Start(nil, "quest.query")
	sp.End(nil)
	r.Tick(clock.Advance(time.Second))
	reg.Counter("qatk_pipeline_documents_total").Add(2)
	r.Tick(clock.Advance(time.Second))
	b, _, err := r.CaptureNow(ReasonPanic, obs.L("value", "nil deref"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, b, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"INCIDENT REPORT — PANIC",
		"value                nil deref",
		"== RUNTIME ==",
		"== SUBSYSTEM RELDB ==",
		"sync_policy          always",
		"== METRIC MOVEMENT",
		"qatk_pipeline_documents_total",
		"== SPANS BY TOTAL TIME ==",
		"quest.query",
		"== LOG TAIL",
		"msg=boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if err := WriteReport(&sb, nil, false); err == nil {
		t.Error("nil bundle must error")
	}
}

// TestNilRecorderIsNoOp: the disabled state the hot paths rely on.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.ObserveLatency(time.Second)
	g := r.Guard("anything")
	g.Beat()
	g.Stop()
	r.AddInfo("x", func() map[string]string { return nil })
	r.Tick(time.Unix(0, 0))
	r.Watch(time.Second)
	if d := r.Trigger(ReasonPanic); d != "" {
		t.Errorf("nil Trigger = %q", d)
	}
	if _, _, err := r.CaptureNow(ReasonOnDemand); err == nil {
		t.Error("nil CaptureNow must error")
	}
	if r.LastBundleDir() != "" {
		t.Error("nil LastBundleDir non-empty")
	}
	r.Close()
}

// TestWatchLoopTicks: the background loop drives Tick off the real
// ticker; a guard stalled under the injected clock produces a bundle
// without any explicit Tick calls.
func TestWatchLoopTicks(t *testing.T) {
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.StallDeadline = time.Minute
	})
	r.Guard("eval.fold")
	clock.Advance(10 * time.Minute) // stalled per the fake clock
	r.Watch(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(listBundles(t, dir)) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := listBundles(t, dir); len(got) == 0 {
		t.Fatal("watch loop never fired the stall trigger")
	}
	r.Close()
	r.Close() // idempotent
}
