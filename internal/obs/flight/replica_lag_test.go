package flight

import (
	"strings"
	"testing"
	"time"
)

// TestReplicaLagWatchTriggersAfterConsecutiveTicks: the replica-lag hard
// trigger fires only after K consecutive breaching watchdog passes, any
// within-bound pass resets the streak, and the streak re-arms after
// firing — all driven deterministically through the injected clock.
func TestReplicaLagWatchTriggersAfterConsecutiveTicks(t *testing.T) {
	var lag time.Duration
	r, clock, _, dir := newTestRecorder(t, nil)
	r.WatchReplicaLag(func() (time.Duration, string) { return lag, "r1" }, 100*time.Millisecond, 3)

	// Healthy replica: ticks never fire.
	lag = 10 * time.Millisecond
	for i := 0; i < 5; i++ {
		r.Tick(clock.Advance(time.Second))
	}
	if got := listBundles(t, dir); len(got) != 0 {
		t.Fatalf("bundles under healthy lag = %v, want none", got)
	}

	// Two breaching ticks, then recovery: the streak resets.
	lag = time.Second
	r.Tick(clock.Advance(time.Second))
	r.Tick(clock.Advance(time.Second))
	lag = 0
	r.Tick(clock.Advance(time.Second))
	lag = time.Second
	r.Tick(clock.Advance(time.Second))
	r.Tick(clock.Advance(time.Second))
	if got := listBundles(t, dir); len(got) != 0 {
		t.Fatalf("bundles before K consecutive breaches = %v, want none", got)
	}

	// The third consecutive breach fires.
	r.Tick(clock.Advance(time.Second))
	got := listBundles(t, dir)
	if len(got) != 1 || !strings.HasSuffix(got[0], "-replica_lag") {
		t.Fatalf("bundles = %v, want one replica_lag", got)
	}

	// Firing reset the streak: the next trigger needs K fresh breaches.
	r.Tick(clock.Advance(time.Second))
	r.Tick(clock.Advance(time.Second))
	if got := listBundles(t, dir); len(got) != 1 {
		t.Fatalf("bundles two ticks after firing = %v, want still 1", got)
	}
	r.Tick(clock.Advance(time.Second))
	if got := listBundles(t, dir); len(got) != 2 {
		t.Fatalf("bundles after re-breach = %v, want 2", got)
	}
}

// TestReplicaLagWatchDisabled: nil recorder, nil fn, and non-positive max
// are all inert.
func TestReplicaLagWatchDisabled(t *testing.T) {
	var nilR *Recorder
	nilR.WatchReplicaLag(func() (time.Duration, string) { return time.Hour, "r" }, time.Second, 1)
	nilR.Tick(time.Unix(0, 0))

	r, clock, _, dir := newTestRecorder(t, nil)
	r.WatchReplicaLag(nil, time.Second, 1)
	r.WatchReplicaLag(func() (time.Duration, string) { return time.Hour, "r" }, 0, 1)
	for i := 0; i < 3; i++ {
		r.Tick(clock.Advance(time.Second))
	}
	if got := listBundles(t, dir); len(got) != 0 {
		t.Fatalf("bundles from disabled watches = %v, want none", got)
	}
}
