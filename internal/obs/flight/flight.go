// Package flight is the QATK/QUEST black-box flight recorder: it
// continuously retains the recent past — trace spans (via the obs ring
// tracer), log lines (via the non-blocking obs.RingSink), and periodic
// metric-registry captures — and snapshots all of it into a diagnostic
// bundle the moment an anomaly fires, so an on-call engineer
// investigates the state *at the incident*, not a reconstruction.
//
// Triggers come in two kinds. Watchdogs evaluate on every Tick of an
// injected clock: an SLO watchdog over a sliding-window latency histogram
// on the QUEST serving path (p99 over budget for K consecutive windows),
// a stall detector over per-subsystem heartbeat Guards (no document or
// fold progress before a deadline), and a goroutine-count spike check.
// Hard events trigger directly from the subsystem that detects them:
// handler panic recovery (quest), the pipeline circuit breaker, and the
// reldb fsync-failure latch.
//
// Everything is nil-safe: a nil *Recorder (recording disabled) makes
// every method — including Guard heartbeats on the pipeline hot path — a
// cheap no-op, mirroring the obs package contract.
package flight

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prof"
	"repro/internal/obs/reqlog"
)

// Metric names the flight recorder emits (qatklint/metricname: constants,
// snake_case, subsystem prefix, unit suffix). The quest_slo_* families
// describe the QUEST serving-path SLO the watchdog guards; they live here
// because the watchdog does.
const (
	// MetricFlightBundlesTotal counts written diagnostic bundles by
	// trigger reason (label "reason").
	MetricFlightBundlesTotal = "obs_flight_bundles_total"
	// MetricFlightSuppressedTotal counts triggers suppressed by the
	// minimum-interval rate limit.
	MetricFlightSuppressedTotal = "obs_flight_suppressed_total"
	// MetricLogDroppedTotal counts log lines the ring sink dropped from
	// the forward path because the underlying writer could not keep up.
	MetricLogDroppedTotal = "obs_log_dropped_total"
	// MetricSLOBreachesTotal counts sliding windows whose serving-path
	// p99 exceeded the budget.
	MetricSLOBreachesTotal = "quest_slo_breaches_total"
	// MetricSLOWindowP99Seconds gauges the most recent completed window's
	// estimated p99 latency.
	MetricSLOWindowP99Seconds = "quest_slo_window_p99_seconds"
)

// Trigger reasons, as recorded in bundle manifests and the reason label.
const (
	ReasonSLOBreach      = "slo_breach"
	ReasonStall          = "stall"
	ReasonPanic          = "panic"
	ReasonCircuitBreaker = "circuit_breaker"
	ReasonFsyncLatch     = "fsync_latch"
	ReasonGoroutineSpike = "goroutine_spike"
	ReasonShardStall     = "shard_stall"
	ReasonReplicaLag     = "replica_lag"
	ReasonOnDemand       = "on_demand"
)

// DefaultReplicaLagTicks is how many consecutive watchdog passes a
// replica must breach its apply-lag bound before the hard trigger fires
// (WatchReplicaLag with ticks <= 0).
const DefaultReplicaLagTicks = 3

// Defaults for zero Config fields.
const (
	DefaultSLOWindow      = 10 * time.Second
	DefaultSLOBreaches    = 3
	DefaultSLOMinSamples  = 10
	DefaultStallDeadline  = 2 * time.Minute
	DefaultGoroutineLimit = 5000
	DefaultMetricsHistory = 8
	DefaultMaxBundles     = 16
	DefaultMinInterval    = 30 * time.Second
	DefaultLogLines       = 200
)

// Config wires a Recorder.
type Config struct {
	// Dir is where bundles are written, one timestamped directory each.
	// Empty disables persistence: triggers still fire, log, and count,
	// and /debug/bundle still serves in-memory captures.
	Dir string
	// Clock is the injected time source (default time.Now). Every
	// watchdog decision reads it, so tests are deterministic.
	Clock func() time.Time

	// Sources. Any of them may be nil; the bundle simply omits that
	// section.
	Registry *obs.Registry
	Tracer   *obs.Tracer
	Logs     *obs.RingSink
	// Requests is the tail-sampled wide-event log; a capture freezes its
	// retained ring into the bundle's requests section.
	Requests *reqlog.Log
	// Profiles is the continuous profiler; a capture freezes its
	// snapshot ring into the bundle's profiles section, and breach-window
	// triggers (SLO breach, stall, breaker trip, shard stall, replica
	// lag) add a fresh CPU capture of the incident window.
	Profiles *prof.Sampler
	// Logger receives the recorder's own events (bundle written, trigger
	// suppressed). Nil disables them.
	Logger *obs.Logger

	// SLOTarget is the serving-path p99 latency budget; 0 disables the
	// SLO watchdog. SLOWindow is the sliding-window length, SLOBreaches
	// the number of consecutive over-budget windows that trigger, and
	// SLOMinSamples the observations a window needs before it is judged
	// (quiet windows neither breach nor reset the streak).
	SLOTarget     time.Duration
	SLOWindow     time.Duration
	SLOBreaches   int
	SLOMinSamples int

	// StallDeadline is how long a Guard may go without a heartbeat before
	// the stall trigger fires (default 2m).
	StallDeadline time.Duration

	// GoroutineLimit triggers when the process goroutine count reaches
	// it: 0 means DefaultGoroutineLimit, negative disables. Goroutines
	// injects the counter (default runtime.NumGoroutine).
	GoroutineLimit int
	Goroutines     func() int

	// MetricsHistory bounds the ring of periodic registry captures a
	// bundle carries; MaxBundles bounds flight-directory retention
	// (oldest deleted first); MinInterval rate-limits anomaly-triggered
	// bundles (on-demand captures bypass it); LogLines caps the log tail
	// per bundle.
	MetricsHistory int
	MaxBundles     int
	MinInterval    time.Duration
	LogLines       int
}

// Recorder is the flight recorder. A nil *Recorder is disabled and every
// method is a no-op.
type Recorder struct {
	cfg        Config
	clock      func() time.Time
	goroutines func() int
	log        *obs.Logger

	bundlesByReason func(reason string) *obs.Counter
	suppressed      *obs.Counter
	sloBreaches     *obs.Counter
	sloP99          *obs.Gauge

	// sloMu guards only the latency window, so the serving hot path never
	// contends with bundle writes.
	sloMu     sync.Mutex
	sloCounts []uint64
	sloTotal  int
	sloStart  time.Time
	sloStreak int

	mu          sync.Mutex
	metricHist  []MetricCapture
	guards      map[*Guard]struct{}
	infos       []infoProvider
	lagWatches  []*replicaLagWatch
	lastAuto    time.Time
	lastDir     string
	goroLatched bool

	watchOnce sync.Once
	closeOnce sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// infoProvider is one registered extra-state source.
type infoProvider struct {
	name string
	fn   func() map[string]string
}

// New builds a Recorder. Zero Config fields take the package defaults.
func New(cfg Config) *Recorder {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Goroutines == nil {
		cfg.Goroutines = runtime.NumGoroutine
	}
	if cfg.SLOWindow <= 0 {
		cfg.SLOWindow = DefaultSLOWindow
	}
	if cfg.SLOBreaches <= 0 {
		cfg.SLOBreaches = DefaultSLOBreaches
	}
	if cfg.SLOMinSamples <= 0 {
		cfg.SLOMinSamples = DefaultSLOMinSamples
	}
	if cfg.StallDeadline <= 0 {
		cfg.StallDeadline = DefaultStallDeadline
	}
	if cfg.GoroutineLimit == 0 {
		cfg.GoroutineLimit = DefaultGoroutineLimit
	}
	if cfg.MetricsHistory <= 0 {
		cfg.MetricsHistory = DefaultMetricsHistory
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.MinInterval < 0 {
		cfg.MinInterval = 0
	} else if cfg.MinInterval == 0 {
		cfg.MinInterval = DefaultMinInterval
	}
	if cfg.LogLines <= 0 {
		cfg.LogLines = DefaultLogLines
	}
	r := &Recorder{
		cfg:        cfg,
		clock:      cfg.Clock,
		goroutines: cfg.Goroutines,
		log:        cfg.Logger,
		guards:     make(map[*Guard]struct{}),
		sloCounts:  make([]uint64, len(obs.DefBuckets)+1),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	reg := cfg.Registry
	r.bundlesByReason = func(reason string) *obs.Counter {
		return reg.Counter(MetricFlightBundlesTotal, obs.L("reason", reason))
	}
	r.suppressed = reg.Counter(MetricFlightSuppressedTotal)
	if cfg.SLOTarget > 0 {
		r.sloBreaches = reg.Counter(MetricSLOBreachesTotal)
		r.sloP99 = reg.Gauge(MetricSLOWindowP99Seconds)
	}
	if cfg.Logs != nil {
		cfg.Logs.Instrument(reg.Counter(MetricLogDroppedTotal))
	}
	return r
}

// AddInfo registers an extra-state provider whose fields are embedded in
// every bundle under name (e.g. "reldb" → WAL/sync stats). fn runs at
// capture time and must be safe to call from any goroutine.
func (r *Recorder) AddInfo(name string, fn func() map[string]string) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.infos = append(r.infos, infoProvider{name: name, fn: fn})
	r.mu.Unlock()
}

// replicaLagWatch is one registered replication-lag watchdog; streak is
// guarded by the recorder's mu.
type replicaLagWatch struct {
	fn     func() (time.Duration, string)
	max    time.Duration
	ticks  int
	streak int
}

// WatchReplicaLag registers a replication-lag hard trigger: fn reports
// the worst apply lag across the replica set plus the lagging replica's
// ID, and when that lag exceeds max for `ticks` consecutive watchdog
// passes, a bundle fires with ReasonReplicaLag (streak resets after
// firing and on any within-bound pass, mirroring the SLO streak). Like
// AddInfo, registration happens after New — questd builds the recorder
// before its replicas exist. ticks <= 0 means DefaultReplicaLagTicks; a
// non-positive max disables the watch.
func (r *Recorder) WatchReplicaLag(fn func() (time.Duration, string), max time.Duration, ticks int) {
	if r == nil || fn == nil || max <= 0 {
		return
	}
	if ticks <= 0 {
		ticks = DefaultReplicaLagTicks
	}
	r.mu.Lock()
	r.lagWatches = append(r.lagWatches, &replicaLagWatch{fn: fn, max: max, ticks: ticks})
	r.mu.Unlock()
}

// --- SLO watchdog --------------------------------------------------------

// ObserveLatency feeds one serving-path latency observation into the SLO
// sliding window. Cheap and allocation-free: one mutex and a bucket
// increment.
func (r *Recorder) ObserveLatency(d time.Duration) {
	if r == nil || r.cfg.SLOTarget <= 0 {
		return
	}
	s := d.Seconds()
	r.sloMu.Lock()
	i := 0
	for ; i < len(obs.DefBuckets); i++ {
		if s <= obs.DefBuckets[i] {
			break
		}
	}
	r.sloCounts[i]++
	r.sloTotal++
	r.sloMu.Unlock()
}

// sloWindowResult harvests and resets the current window if it has run
// its course, returning (p99, sampled, rotated).
func (r *Recorder) sloWindowResult(now time.Time) (float64, bool, bool) {
	r.sloMu.Lock()
	defer r.sloMu.Unlock()
	if r.sloStart.IsZero() {
		r.sloStart = now
		return 0, false, false
	}
	if now.Sub(r.sloStart) < r.cfg.SLOWindow {
		return 0, false, false
	}
	total, counts := r.sloTotal, r.sloCounts
	r.sloCounts = make([]uint64, len(obs.DefBuckets)+1)
	r.sloTotal = 0
	r.sloStart = now
	if total < r.cfg.SLOMinSamples {
		return 0, false, true
	}
	// p99 estimate: upper bound of the first bucket whose cumulative
	// count covers the 99th percentile; observations beyond the last
	// bound report the last bound ("at least").
	need := uint64((99*total + 99) / 100)
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= need {
			if i < len(obs.DefBuckets) {
				return obs.DefBuckets[i], true, true
			}
			return obs.DefBuckets[len(obs.DefBuckets)-1], true, true
		}
	}
	return 0, false, true
}

// --- stall guards --------------------------------------------------------

// Guard is one heartbeat-monitored activity (a collection run, a
// cross-validation). Beat marks progress; Stop disarms the guard. A nil
// *Guard (from a nil recorder) is a no-op.
type Guard struct {
	r        *Recorder
	name     string
	lastNano atomic.Int64
	fired    atomic.Bool
}

// Guard arms a stall guard named name. The caller must Stop it when the
// guarded activity completes.
func (r *Recorder) Guard(name string) *Guard {
	if r == nil {
		return nil
	}
	g := &Guard{r: r, name: name}
	g.lastNano.Store(r.clock().UnixNano())
	r.mu.Lock()
	r.guards[g] = struct{}{}
	r.mu.Unlock()
	return g
}

// Beat records progress: the stall deadline restarts from now. Safe on
// the per-document hot path (two atomics and a clock read).
func (g *Guard) Beat() {
	if g == nil {
		return
	}
	g.lastNano.Store(g.r.clock().UnixNano())
	g.fired.Store(false)
}

// Stop disarms the guard.
func (g *Guard) Stop() {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	delete(g.r.guards, g)
	g.r.mu.Unlock()
}

// --- watchdog loop -------------------------------------------------------

// Tick runs one watchdog pass at the injected now: it captures a metric
// reading into the delta ring and evaluates the SLO window, stall
// deadlines, and the goroutine-count limit, firing triggers as needed.
// The background Watch loop calls it; deterministic tests call it
// directly.
func (r *Recorder) Tick(now time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.captureMetricsLocked(now)
	r.mu.Unlock()

	if r.cfg.SLOTarget > 0 {
		if p99, sampled, rotated := r.sloWindowResult(now); rotated && sampled {
			r.sloP99.Set(p99)
			target := r.cfg.SLOTarget.Seconds()
			if p99 > target {
				r.sloBreaches.Inc()
				r.sloMu.Lock()
				r.sloStreak++
				streak := r.sloStreak
				r.sloMu.Unlock()
				if streak >= r.cfg.SLOBreaches {
					r.sloMu.Lock()
					r.sloStreak = 0
					r.sloMu.Unlock()
					r.Trigger(ReasonSLOBreach,
						obs.L("p99_seconds", formatSeconds(p99)),
						obs.L("target_seconds", formatSeconds(target)),
						obs.L("windows", strconv.Itoa(r.cfg.SLOBreaches)),
						obs.L("window", r.cfg.SLOWindow.String()))
				}
			} else {
				r.sloMu.Lock()
				r.sloStreak = 0
				r.sloMu.Unlock()
			}
		}
	}

	r.mu.Lock()
	var stalled []*Guard
	for g := range r.guards {
		last := time.Unix(0, g.lastNano.Load())
		if now.Sub(last) > r.cfg.StallDeadline && g.fired.CompareAndSwap(false, true) {
			stalled = append(stalled, g)
		}
	}
	r.mu.Unlock()
	sort.Slice(stalled, func(i, j int) bool { return stalled[i].name < stalled[j].name })
	for _, g := range stalled {
		r.Trigger(ReasonStall,
			obs.L("guard", g.name),
			obs.L("last_heartbeat", time.Unix(0, g.lastNano.Load()).UTC().Format(time.RFC3339)),
			obs.L("deadline", r.cfg.StallDeadline.String()))
	}

	if limit := r.cfg.GoroutineLimit; limit > 0 {
		n := r.goroutines()
		r.mu.Lock()
		fire := n >= limit && !r.goroLatched
		r.goroLatched = n >= limit
		r.mu.Unlock()
		if fire {
			r.Trigger(ReasonGoroutineSpike,
				obs.L("goroutines", strconv.Itoa(n)),
				obs.L("limit", strconv.Itoa(limit)))
		}
	}

	r.mu.Lock()
	watches := append([]*replicaLagWatch(nil), r.lagWatches...)
	r.mu.Unlock()
	for _, w := range watches {
		lag, replica := w.fn()
		r.mu.Lock()
		if lag > w.max {
			w.streak++
		} else {
			w.streak = 0
		}
		fire := w.streak >= w.ticks
		if fire {
			w.streak = 0
		}
		r.mu.Unlock()
		if fire {
			r.Trigger(ReasonReplicaLag,
				obs.L("replica", replica),
				obs.L("apply_lag", lag.String()),
				obs.L("max_apply_lag", w.max.String()),
				obs.L("ticks", strconv.Itoa(w.ticks)))
		}
	}
}

// formatSeconds renders a seconds value compactly for details fields.
func formatSeconds(s float64) string { return strconv.FormatFloat(s, 'g', 4, 64) }

// Watch starts the background watchdog loop, Ticking every interval until
// Close. Call at most once; tests use Tick directly instead.
func (r *Recorder) Watch(interval time.Duration) {
	if r == nil || interval <= 0 {
		return
	}
	r.watchOnce.Do(func() {
		go func() {
			defer close(r.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-r.quit:
					return
				case <-t.C:
					r.Tick(r.clock())
				}
			}
		}()
	})
}

// Close stops the Watch loop, if one was started. Idempotent.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	// Claim the watch slot: if no loop ever started, mark it finished.
	r.watchOnce.Do(func() { close(r.done) })
	r.closeOnce.Do(func() { close(r.quit) })
	<-r.done
}

// --- capture & trigger ---------------------------------------------------

// captureMetricsLocked renders the registry and appends the parsed
// capture to the delta ring. Caller holds r.mu.
func (r *Recorder) captureMetricsLocked(now time.Time) {
	if r.cfg.Registry == nil {
		return
	}
	var buf bytes.Buffer
	if err := r.cfg.Registry.WriteProm(&buf); err != nil {
		return
	}
	r.metricHist = append(r.metricHist, MetricCapture{Time: now, Series: parseProm(buf.String())})
	if n := len(r.metricHist); n > r.cfg.MetricsHistory {
		r.metricHist = append(r.metricHist[:0], r.metricHist[n-r.cfg.MetricsHistory:]...)
	}
}

// capture assembles a complete in-memory bundle. Caller holds r.mu.
func (r *Recorder) captureLocked(reason string, details []obs.Label) *Bundle {
	now := r.clock()
	b := &Bundle{
		Schema: BundleSchema,
		Reason: reason,
		Time:   now,
		Build:  obs.Build(),
	}
	if len(details) > 0 {
		b.Details = make(map[string]string, len(details))
		for _, l := range details {
			b.Details[l.Key] = l.Value
		}
	}
	b.Spans = r.cfg.Tracer.Snapshot()
	b.SpanStats = r.cfg.Tracer.Stats()
	b.Logs = r.cfg.Logs.Recent(r.cfg.LogLines)
	b.DroppedLogs = r.cfg.Logs.Dropped()
	r.captureMetricsLocked(now)
	b.Metrics = append([]MetricCapture(nil), r.metricHist...)
	b.Goroutines = r.goroutines()
	b.GoroutineDump = goroutineDump()
	b.MemStats = readMemStats()
	if len(r.infos) > 0 {
		b.Extras = make(map[string]map[string]string, len(r.infos))
		for _, p := range r.infos {
			b.Extras[p.name] = p.fn()
		}
	}
	b.Requests = r.cfg.Requests.Snapshot()
	b.Profiles = r.cfg.Profiles.Freeze(breachCPUReasons[reason])
	return b
}

// breachCPUReasons are the trigger reasons whose bundle gets a fresh
// CPU capture of the breach window on top of the frozen profile ring:
// the anomalies where "where are the cycles going *right now*" is the
// first question an on-call engineer asks.
var breachCPUReasons = map[string]bool{
	ReasonSLOBreach:      true,
	ReasonStall:          true,
	ReasonShardStall:     true,
	ReasonCircuitBreaker: true,
	ReasonReplicaLag:     true,
}

// goroutineDump renders all goroutine stacks.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return string(buf[:n])
}

// readMemStats summarizes runtime.MemStats.
func readMemStats() MemSummary {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemSummary{
		HeapAllocBytes:  m.HeapAlloc,
		HeapSysBytes:    m.HeapSys,
		HeapObjects:     m.HeapObjects,
		TotalAllocBytes: m.TotalAlloc,
		SysBytes:        m.Sys,
		NumGC:           m.NumGC,
		PauseTotalNs:    m.PauseTotalNs,
	}
}

// Trigger fires an anomaly trigger: subject to the MinInterval rate
// limit, it captures a bundle, persists it when a flight directory is
// configured, prunes retention, and logs the incident. It returns the
// bundle directory ("" when persistence is disabled or the trigger was
// suppressed).
func (r *Recorder) Trigger(reason string, details ...obs.Label) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock()
	if !r.lastAuto.IsZero() && now.Sub(r.lastAuto) < r.cfg.MinInterval {
		r.suppressed.Inc()
		r.log.Info("flight trigger suppressed by rate limit",
			append([]obs.Label{obs.L("reason", reason)}, details...)...)
		return ""
	}
	r.lastAuto = now
	dir, _ := r.writeLocked(r.captureLocked(reason, details))
	return dir
}

// CaptureNow captures a bundle on demand, bypassing the rate limit, and
// persists it when a flight directory is configured. It returns the
// bundle, the directory it was written to ("" without persistence), and
// any persistence error (the in-memory bundle is valid regardless).
func (r *Recorder) CaptureNow(reason string, details ...obs.Label) (*Bundle, string, error) {
	if r == nil {
		return nil, "", fmt.Errorf("flight: recorder disabled")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.captureLocked(reason, details)
	dir, err := r.writeLocked(b)
	return b, dir, err
}

// writeLocked persists a bundle (when Dir is set), prunes retention,
// counts, and logs. Caller holds r.mu.
func (r *Recorder) writeLocked(b *Bundle) (string, error) {
	r.bundlesByReason(b.Reason).Inc()
	if r.cfg.Dir == "" {
		r.log.Error("flight trigger fired (no flight dir, bundle not persisted)",
			obs.L("reason", b.Reason))
		return "", nil
	}
	dir, err := b.WriteDir(r.cfg.Dir)
	if err != nil {
		r.log.Error("flight bundle write failed",
			obs.L("reason", b.Reason), obs.L("err", err.Error()))
		return "", err
	}
	r.lastDir = dir
	r.pruneLocked()
	r.log.Error("diagnostic bundle captured",
		obs.L("reason", b.Reason), obs.L("dir", dir))
	return dir, nil
}

// pruneLocked enforces MaxBundles retention, deleting the oldest bundle
// directories first (names sort chronologically). Caller holds r.mu.
func (r *Recorder) pruneLocked() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	if len(bundles) <= r.cfg.MaxBundles {
		return
	}
	sort.Strings(bundles)
	for _, name := range bundles[:len(bundles)-r.cfg.MaxBundles] {
		_ = os.RemoveAll(filepath.Join(r.cfg.Dir, name))
	}
}

// LastBundleDir reports the most recently written bundle directory.
func (r *Recorder) LastBundleDir() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastDir
}
