package flight

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestReadBundleAcceptsPR5DirectoryBundle: a committed PR 5-era
// directory bundle — written before the requests (PR 8) and profiles
// (PR 10) sections existed — still loads, renders, and survives a
// write/read round-trip unchanged, with the newer sections absent.
func TestReadBundleAcceptsPR5DirectoryBundle(t *testing.T) {
	b, err := ReadBundle(filepath.Join("testdata", "pr5_bundle"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != 1 || b.Reason != ReasonSLOBreach {
		t.Fatalf("schema/reason = %d/%q", b.Schema, b.Reason)
	}
	if b.Goroutines != 23 || b.Details["p99_seconds"] != "0.5" {
		t.Fatalf("manifest fields lost: goroutines=%d details=%v", b.Goroutines, b.Details)
	}
	if len(b.Spans) != 1 || b.SpanStats[0].Count != 42 {
		t.Fatalf("spans lost: %+v / %+v", b.Spans, b.SpanStats)
	}
	if len(b.Metrics) != 2 || len(b.Logs) != 2 || b.Extras["reldb"]["wal_appends"] != "512" {
		t.Fatalf("sections lost: metrics=%d logs=%d extras=%v", len(b.Metrics), len(b.Logs), b.Extras)
	}
	if b.Requests != nil || b.Profiles != nil {
		t.Fatalf("pre-PR8/PR10 bundle grew newer sections: requests=%v profiles=%v", b.Requests, b.Profiles)
	}

	// Round-trip: re-writing with today's writer and re-reading yields the
	// identical bundle — the old bundle is not mutated by new code.
	dir, err := b.WriteDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, b2) {
		t.Fatalf("PR5 bundle changed across a write/read round-trip:\n got %+v\nwant %+v", b2, b)
	}

	var report bytes.Buffer
	if err := WriteReport(&report, b, true); err != nil {
		t.Fatal(err)
	}
	out := report.String()
	for _, want := range []string{"SLO_BREACH", "METRIC MOVEMENT", "SUBSYSTEM RELDB", "LOG TAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diagnose report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PROFILES") {
		t.Fatalf("diagnose invented a profiles section for a PR5 bundle:\n%s", out)
	}
}

// TestReadBundleAcceptsPR8JSONBundle: a committed PR 8-era single-file
// JSON bundle — carrying the requests section but predating profiles —
// loads with its wide events intact and no profiles section.
func TestReadBundleAcceptsPR8JSONBundle(t *testing.T) {
	b, err := ReadBundle(filepath.Join("testdata", "pr8_bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != ReasonOnDemand || b.DroppedLogs != 2 {
		t.Fatalf("header fields lost: reason=%q dropped=%d", b.Reason, b.DroppedLogs)
	}
	if len(b.Requests) != 1 {
		t.Fatalf("requests section lost: %+v", b.Requests)
	}
	ev := b.Requests[0]
	if ev.Part != "P-100421" || !ev.Hedged || len(ev.Shards) != 2 || !ev.Shards[1].Winner {
		t.Fatalf("wide event fields lost: %+v", ev)
	}
	if len(ev.Stages) != 2 || ev.Stages[0].Name != "score" {
		t.Fatalf("stage timings lost: %+v", ev.Stages)
	}
	if b.Profiles != nil {
		t.Fatalf("pre-PR10 bundle grew a profiles section: %+v", b.Profiles)
	}

	var report bytes.Buffer
	if err := WriteReport(&report, b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "ON_DEMAND") {
		t.Fatalf("diagnose report:\n%s", report.String())
	}
}
