package flight

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteReport pretty-prints a bundle as a human-readable incident report:
// header (when, why, where), runtime vitals, what moved in the metrics,
// the slowest span families, the log tail, and how to dig further. This
// is the read side of the flight recorder — `qatk diagnose <bundle>`.
func WriteReport(w io.Writer, b *Bundle, verbose bool) error {
	if b == nil {
		return fmt.Errorf("flight: nil bundle")
	}
	p := &printer{w: w}

	p.head("INCIDENT REPORT — %s", strings.ToUpper(b.Reason))
	p.kv("captured", b.Time.UTC().Format(time.RFC3339))
	p.kv("schema", fmt.Sprintf("%d", b.Schema))
	if b.Build.Version != "" || b.Build.GoVersion != "" {
		p.kv("build", strings.TrimSpace(b.Build.Version+" "+b.Build.GoVersion))
	}
	if b.Build.Revision != "" {
		rev := b.Build.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if b.Build.Modified {
			rev += " (dirty)"
		}
		p.kv("revision", rev)
	}
	if len(b.Details) > 0 {
		keys := make([]string, 0, len(b.Details))
		for k := range b.Details {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p.kv(k, b.Details[k])
		}
	}

	p.head("RUNTIME")
	p.kv("goroutines", fmt.Sprintf("%d", b.Goroutines))
	p.kv("heap_alloc", byteSize(b.MemStats.HeapAllocBytes))
	p.kv("heap_objects", fmt.Sprintf("%d", b.MemStats.HeapObjects))
	p.kv("sys", byteSize(b.MemStats.SysBytes))
	p.kv("gc_cycles", fmt.Sprintf("%d", b.MemStats.NumGC))
	p.kv("gc_pause_total", time.Duration(b.MemStats.PauseTotalNs).String())
	if b.DroppedLogs > 0 {
		p.kv("dropped_log_lines", fmt.Sprintf("%d (log destination could not keep up)", b.DroppedLogs))
	}

	if len(b.Extras) > 0 {
		names := make([]string, 0, len(b.Extras))
		for n := range b.Extras {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			p.head("SUBSYSTEM %s", strings.ToUpper(n))
			fields := b.Extras[n]
			keys := make([]string, 0, len(fields))
			for k := range fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p.kv(k, fields[k])
			}
		}
	}

	if deltas := b.Deltas(); len(deltas) > 0 {
		window := b.Metrics[len(b.Metrics)-1].Time.Sub(b.Metrics[0].Time)
		p.head("METRIC MOVEMENT (over %s, %d captures)", window, len(b.Metrics))
		// Largest absolute movement first; the long tail only with -v.
		sort.SliceStable(deltas, func(i, j int) bool {
			di, dj := deltas[i].Delta, deltas[j].Delta
			if di < 0 {
				di = -di
			}
			if dj < 0 {
				dj = -dj
			}
			return di > dj
		})
		limit := len(deltas)
		if !verbose && limit > 20 {
			limit = 20
		}
		for _, d := range deltas[:limit] {
			p.line("  %+12g  %s (now %g)", d.Delta, d.Series, d.Now)
		}
		if limit < len(deltas) {
			p.line("  … %d more series moved (rerun with -v)", len(deltas)-limit)
		}
	} else if len(b.Metrics) > 0 {
		p.head("METRIC MOVEMENT")
		p.line("  single capture only — no deltas to show")
	}

	if len(b.SpanStats) > 0 {
		p.head("SPANS BY TOTAL TIME")
		limit := len(b.SpanStats)
		if !verbose && limit > 10 {
			limit = 10
		}
		for _, s := range b.SpanStats[:limit] {
			avg := time.Duration(0)
			if s.Count > 0 {
				avg = s.Total / time.Duration(s.Count)
			}
			errs := ""
			if s.Errors > 0 {
				errs = fmt.Sprintf("  errors=%d", s.Errors)
			}
			p.line("  %-40s total=%-12s count=%-6d avg=%s%s", s.Name, s.Total, s.Count, avg, errs)
		}
		if limit < len(b.SpanStats) {
			p.line("  … %d more span families (rerun with -v)", len(b.SpanStats)-limit)
		}
	}

	if pr := b.Profiles; pr != nil && len(pr.Ring) > 0 {
		newest := &pr.Ring[len(pr.Ring)-1]
		p.head("PROFILES (%d snapshots — render with `qatk prof <bundle>`)", len(pr.Ring))
		p.kv("goroutines", fmt.Sprintf("%d -> %d across the ring",
			pr.Ring[0].Goroutines, newest.Goroutines))
		p.kv("heap_inuse", fmt.Sprintf("%s in %d objects",
			byteSize(uint64(newest.Heap.TotalBytes)), newest.Heap.Total))
		if len(pr.BreachCPU) > 0 {
			p.kv("breach_cpu", fmt.Sprintf("%d bytes raw pprof of the breach window", len(pr.BreachCPU)))
		}
		limit := len(newest.HeapDelta)
		if !verbose && limit > 5 {
			limit = 5
		}
		for _, d := range newest.HeapDelta[:limit] {
			p.line("  %+12d B  %s", d.DeltaBytes, d.Func)
		}
		if limit < len(newest.HeapDelta) {
			p.line("  … %d more heap movers (rerun with -v, or `qatk prof`)", len(newest.HeapDelta)-limit)
		}
	}

	if len(b.Logs) > 0 {
		p.head("LOG TAIL (%d lines retained)", len(b.Logs))
		logs := b.Logs
		if !verbose && len(logs) > 25 {
			p.line("  … %d earlier lines (rerun with -v)", len(logs)-25)
			logs = logs[len(logs)-25:]
		}
		for _, line := range logs {
			p.line("  %s", line)
		}
	}

	if verbose && len(b.Spans) > 0 {
		p.head("RECENT SPANS (%d buffered)", len(b.Spans))
		for _, s := range b.Spans {
			status := "ok"
			if s.Err != "" {
				status = "ERR " + s.Err
			}
			p.line("  %s %-40s %-12s %s", s.Start.UTC().Format("15:04:05.000"), s.Name, s.Duration, status)
		}
	}

	if verbose && b.GoroutineDump != "" {
		p.head("GOROUTINE DUMP")
		p.line("%s", strings.TrimRight(b.GoroutineDump, "\n"))
	} else if b.GoroutineDump != "" {
		p.head("GOROUTINE DUMP")
		p.line("  %d bytes captured — rerun with -v to print, or read goroutines.txt in the bundle", len(b.GoroutineDump))
	}

	p.line("")
	return p.err
}

// printer accumulates the first write error so report code stays linear.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) line(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format+"\n", args...)
}

func (p *printer) head(format string, args ...any) {
	p.line("")
	p.line("== "+format+" ==", args...)
}

func (p *printer) kv(k, v string) { p.line("  %-20s %s", k, v) }

// byteSize renders a byte count with a binary unit.
func byteSize(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
