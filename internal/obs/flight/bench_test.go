package flight

import (
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkObserveLatencyDisabled is the serving hot path with the flight
// recorder off (nil *Recorder): the cost every request pays when nothing
// is being recorded. Must stay 0 allocs/op.
func BenchmarkObserveLatencyDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveLatency(42 * time.Millisecond)
	}
}

// BenchmarkObserveLatencyEnabled is the same path with the SLO watchdog
// armed: one mutex and a bucket increment, no allocation.
func BenchmarkObserveLatencyEnabled(b *testing.B) {
	r := New(Config{
		Clock:     func() time.Time { return time.Unix(0, 0) },
		SLOTarget: 100 * time.Millisecond,
		Logger:    obs.NewLogger(io.Discard, obs.LevelError),
	})
	defer r.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveLatency(42 * time.Millisecond)
	}
}

// BenchmarkGuardBeatDisabled is the pipeline per-document heartbeat with
// recording off — a nil check only.
func BenchmarkGuardBeatDisabled(b *testing.B) {
	var r *Recorder
	g := r.Guard("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Beat()
	}
}

// BenchmarkGuardBeatEnabled is the armed heartbeat: a clock read and two
// atomic stores.
func BenchmarkGuardBeatEnabled(b *testing.B) {
	r := New(Config{Logger: obs.NewLogger(io.Discard, obs.LevelError)})
	defer r.Close()
	g := r.Guard("bench")
	defer g.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Beat()
	}
}
