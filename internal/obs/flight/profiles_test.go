package flight

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/prof"
)

// Two canned heap profiles whose diff is a single obvious grower, so
// the bundle's heap delta is deterministic.
const profHeapA = `heap profile: 1: 4096 [2: 8192] @ heap/1048576
1: 4096 [2: 8192] @ 0x4a2b10 0x4632c1
#	0x4a2b0f	repro/internal/kb.Build+0x2ef	/root/repo/internal/kb/kb.go:120
`

const profHeapB = `heap profile: 3: 147456 [6: 294912] @ heap/1048576
3: 147456 [6: 294912] @ 0x4a2b10 0x4632c1
#	0x4a2b0f	repro/internal/kb.Build+0x2ef	/root/repo/internal/kb/kb.go:120
`

const profGoroutines = `goroutine profile: total 4
4 @ 0x4632c1
#	0x4632c0	repro/internal/quest.Serve+0x40	/root/repo/internal/quest/serve.go:10
`

// newTestSampler builds a profiler on canned captures: the CPU bytes
// name which call produced them, so the test can tell the periodic
// window from the fresh breach-window capture.
func newTestSampler(t *testing.T) *prof.Sampler {
	t.Helper()
	heaps := []string{profHeapA, profHeapB}
	calls := 0
	cpuCalls := 0
	s := prof.New(prof.Config{
		Ring:     4,
		Registry: obs.NewRegistry(),
		Logger:   obs.NewLogger(io.Discard, obs.LevelError),
		CaptureCPU: func(time.Duration) ([]byte, error) {
			cpuCalls++
			if cpuCalls > 2 {
				return []byte("breach-window-cpu"), nil
			}
			return []byte("periodic-cpu"), nil
		},
		Profile: func(name string) ([]byte, error) {
			if name == "heap" {
				text := heaps[min(calls, len(heaps)-1)]
				calls++
				return []byte(text), nil
			}
			if name == "goroutine" {
				return []byte(profGoroutines), nil
			}
			return []byte(""), nil
		},
	})
	t.Cleanup(s.Close)
	return s
}

// TestSLOBreachBundleCarriesProfiles is the acceptance test for the
// profiler/flight coupling: a deterministic SLO breach freezes the
// profile ring — with heap deltas — plus a fresh CPU capture of the
// breach window into the bundle, the bundle round-trips through both
// serializations, and the `qatk prof` renderer reads it.
func TestSLOBreachBundleCarriesProfiles(t *testing.T) {
	sampler := newTestSampler(t)
	r, clock, _, dir := newTestRecorder(t, func(c *Config) {
		c.SLOTarget = 100 * time.Millisecond
		c.SLOWindow = 10 * time.Second
		c.SLOBreaches = 1
		c.SLOMinSamples = 1
		c.Profiles = sampler
	})

	// Two periodic samples so the newest snapshot carries a heap delta.
	sampler.SampleNow()
	sampler.SampleNow()

	// One over-budget window fires the breach.
	r.Tick(clock.Now())
	for i := 0; i < 20; i++ {
		r.ObserveLatency(500 * time.Millisecond)
	}
	r.Tick(clock.Advance(10 * time.Second))

	bundles := listBundles(t, dir)
	if len(bundles) != 1 || !strings.HasSuffix(bundles[0], "-slo_breach") {
		t.Fatalf("bundles = %v, want one slo_breach", bundles)
	}
	b, err := ReadBundle(filepath.Join(dir, bundles[0]))
	if err != nil {
		t.Fatal(err)
	}
	pr := b.Profiles
	if pr == nil || len(pr.Ring) != 2 {
		t.Fatalf("bundle profiles = %+v, want a 2-snapshot ring", pr)
	}
	if string(pr.BreachCPU) != "breach-window-cpu" {
		t.Fatalf("breach CPU = %q, want the fresh breach-window capture", pr.BreachCPU)
	}
	newest := pr.Ring[len(pr.Ring)-1]
	if string(newest.CPUPprof) != "periodic-cpu" {
		t.Fatalf("ring CPU = %q, want the periodic capture", newest.CPUPprof)
	}
	if len(newest.HeapDelta) == 0 {
		t.Fatalf("newest snapshot has no heap delta")
	}
	if d := newest.HeapDelta[0]; d.Func != "repro/internal/kb.Build" || d.DeltaBytes != 147456-4096 {
		t.Fatalf("heap delta[0] = %+v", d)
	}

	// The same section survives the single-JSON form.
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBundle(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Profiles == nil || string(b2.Profiles.BreachCPU) != "breach-window-cpu" {
		t.Fatalf("JSON round-trip lost the profiles section: %+v", b2.Profiles)
	}

	// The `qatk prof` renderer reads the frozen capture.
	var report bytes.Buffer
	if err := prof.WriteReport(&report, b.Profiles, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CONTINUOUS PROFILE", "HEAP DELTA", "repro/internal/kb.Build", "breach_cpu"} {
		if !strings.Contains(report.String(), want) {
			t.Fatalf("prof report missing %q:\n%s", want, report.String())
		}
	}

	// And `qatk diagnose` summarizes it inline.
	var diag bytes.Buffer
	if err := WriteReport(&diag, b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.String(), "PROFILES (2 snapshots") {
		t.Fatalf("diagnose report missing profiles section:\n%s", diag.String())
	}
}

// TestOnDemandCaptureFreezesRingWithoutBreachCPU: the on-demand reason
// is not a breach trigger, so the bundle carries the ring but no fresh
// CPU window.
func TestOnDemandCaptureFreezesRingWithoutBreachCPU(t *testing.T) {
	sampler := newTestSampler(t)
	r, _, _, _ := newTestRecorder(t, func(c *Config) {
		c.Profiles = sampler
	})
	sampler.SampleNow()
	b, _, err := r.CaptureNow(ReasonOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if b.Profiles == nil || len(b.Profiles.Ring) != 1 {
		t.Fatalf("on-demand profiles = %+v", b.Profiles)
	}
	if b.Profiles.BreachCPU != nil {
		t.Fatalf("on-demand capture took a breach CPU window: %q", b.Profiles.BreachCPU)
	}
}
