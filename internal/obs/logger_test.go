package obs

import (
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }

// TestLoggerFormat pins the line grammar: ts, level, quoted-when-needed
// msg, then fields in call order.
func TestLoggerFormat(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo).WithClock(fixedClock)
	l.Info("dead letter", L("engine", "tokenizer"), L("doc", "R000042"), L("err", "bad rune"))
	want := `ts=2026-08-06T12:00:00Z level=info msg="dead letter" engine=tokenizer doc=R000042 err="bad rune"` + "\n"
	if sb.String() != want {
		t.Errorf("line = %q, want %q", sb.String(), want)
	}
}

// TestLoggerLevels: events below the logger's level are dropped.
func TestLoggerLevels(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn).WithClock(fixedClock)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("kept")
	l.Error("kept too")
	out := sb.String()
	if strings.Contains(out, "nope") {
		t.Errorf("low-severity events leaked: %q", out)
	}
	if !strings.Contains(out, "level=warn msg=kept") || !strings.Contains(out, `level=error msg="kept too"`) {
		t.Errorf("high-severity events missing: %q", out)
	}
}

// TestLoggerWithAndSpan: derived context fields ride on every line, and
// WithSpan injects hex trace/span IDs.
func TestLoggerWithAndSpan(t *testing.T) {
	var sb strings.Builder
	base := NewLogger(&sb, LevelInfo).WithClock(fixedClock).With(L("component", "quest"))
	tr := NewTracer(1, WithClock(fixedClock))
	span := tr.Start(nil, "http.request")
	base.WithSpan(span).Info("served", L("code", "200"))
	line := sb.String()
	for _, frag := range []string{"component=quest", "trace=1", "span=1", "code=200"} {
		if !strings.Contains(line, frag) {
			t.Errorf("line %q missing %q", line, frag)
		}
	}
	// A nil span leaves the logger unchanged rather than crashing.
	sb.Reset()
	base.WithSpan(nil).Info("plain")
	if strings.Contains(sb.String(), "trace=") {
		t.Errorf("nil span injected trace context: %q", sb.String())
	}
}

// TestNilLoggerIsNoOp: every method on a nil logger does nothing.
func TestNilLoggerIsNoOp(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With(L("k", "v")) != nil || l.WithClock(fixedClock) != nil {
		t.Error("derivations of a nil logger are not nil")
	}
	l.WithSpan(nil).Info("still fine")
}

// TestQuoting: empty and grammar-breaking values are quoted, plain ones
// are not.
func TestQuoting(t *testing.T) {
	cases := map[string]string{
		"":         `""`,
		"plain":    "plain",
		"a b":      `"a b"`,
		`say "hi"`: `"say \"hi\""`,
		"k=v":      `"k=v"`,
	}
	for in, want := range cases {
		if got := quoteValue(in); got != want {
			t.Errorf("quoteValue(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestBuildIdentity: the gauge registers with value 1 and the identity
// carries the toolchain version.
func TestBuildIdentity(t *testing.T) {
	r := NewRegistry()
	id := RegisterBuildInfo(r)
	if id.GoVersion == "" {
		t.Error("build identity lacks a Go version")
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE build_info gauge") || !strings.Contains(sb.String(), "build_info{") {
		t.Errorf("exposition missing build_info: %q", sb.String())
	}
}
