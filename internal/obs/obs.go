// Package obs is the QATK/QUEST observability layer: a concurrency-safe
// metrics registry with Prometheus text exposition, lightweight in-process
// trace spans with a ring-buffer exporter and per-name aggregation, and a
// structured key=value logger with levels and span-context injection.
//
// The paper's feasibility argument (§5.2.2) rests on knowing where
// per-bundle processing time goes — UIMA ships per-annotator performance
// reports, and this package is the reproduction's equivalent, threaded
// through the pipeline, the evaluation harness, and the QUEST serving path.
//
// Everything is stdlib-only and nil-safe by design: a nil *Registry,
// *Tracer, *Logger, or any handle obtained from one is a no-op, so
// instrumented hot paths (Engine.Process, the classifier loop) stay
// allocation-free when observability is disabled. Clocks are injectable
// throughout so deterministic packages can keep their no-wall-clock
// invariant (qatklint/determinism).
//
// Metric names are registered as package-level constants and linted by
// qatklint/metricname: snake_case, a qatk_/quest_/reldb_ subsystem prefix,
// and a conventional unit suffix (_total, _seconds, _bytes, _info,
// _inflight); build_info is the one sanctioned prefix-free name.
package obs

// Label is one key=value pair attached to a metric series, span, or log
// line.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }
