package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics: counters, gauges and fixed-bucket histograms, exposed in the
// Prometheus text exposition format (version 0.0.4). The registry hands
// out typed handles; all mutation goes through atomic operations so the
// handles are safe for concurrent use without locking, and a nil registry
// (observability disabled) yields nil handles whose methods are no-ops.

// metricKind distinguishes the three exposition families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default histogram buckets for request latencies in
// seconds, spanning sub-millisecond handlers to multi-second stragglers.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Scrape self-instrumentation: every WriteProm pass counts itself and
// observes its own rendering cost, so the price of the exposition is
// visible in the exposition. The histogram is observed after the render
// completes, so one scrape reports the cost of its predecessors.
const (
	// MetricScrapeTotal counts WriteProm passes (scrapes), including the
	// one being rendered.
	MetricScrapeTotal = "obs_scrape_total"
	// MetricScrapeSeconds observes the wall-clock cost of each completed
	// WriteProm pass.
	MetricScrapeSeconds = "obs_scrape_seconds"
)

// ScrapeBuckets are the histogram bounds for exposition rendering cost:
// scrapes are fast, so the buckets start at 10µs.
var ScrapeBuckets = []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1}

// Registry holds metric families keyed by name. The zero value is not
// usable; call NewRegistry. A nil *Registry is the sanctioned "disabled"
// state: every lookup returns a nil handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family //qatk:guardedby mu
	clock    func() time.Time
}

// family is one named metric with its labeled series.
type family struct {
	name    string
	kind    metricKind
	buckets []float64 // histograms only; ascending upper bounds
	series  map[string]any
}

// NewRegistry builds a metrics registry. The scrape self-instrumentation
// families are pre-registered so they render (at zero) from the first
// exposition on.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family), clock: time.Now}
	r.Counter(MetricScrapeTotal)
	r.Histogram(MetricScrapeSeconds, ScrapeBuckets)
	return r
}

// WithClock injects the time source used to cost scrapes (a test seam;
// default time.Now) and returns the registry.
func (r *Registry) WithClock(clock func() time.Time) *Registry {
	if r == nil || clock == nil {
		return r
	}
	r.mu.Lock()
	r.clock = clock
	r.mu.Unlock()
	return r
}

// now reads the registry clock.
func (r *Registry) now() time.Time {
	r.mu.Lock()
	c := r.clock
	r.mu.Unlock()
	return c()
}

// renderLabels serializes labels sorted by key into the inner exposition
// form `k1="v1",k2="v2"` ("" for no labels). The rendered string doubles
// as the series identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// lookup returns (creating if needed) the series for name+labels, or nil
// when the registry is nil or the name is already registered with a
// different kind (misregistration must not panic; qatklint/paniccontract
// confines panics to the pipeline recovery layer). New series are built
// from the family's bounds (fixed by its first registration) so every
// series of one histogram family shares a single le set.
func (r *Registry) lookup(name string, kind metricKind, buckets []float64, labels []Label, make func(bounds []float64) any) any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != kind {
		return nil
	}
	sig := renderLabels(labels)
	s, ok := f.series[sig]
	if !ok {
		s = make(f.buckets)
		f.series[sig] = s
	}
	return s
}

// Counter is a monotonically increasing count. A nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Counter returns the counter series for name+labels, registering it on
// first use. Nil registry or a kind clash yields a nil (no-op) handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	s, _ := r.lookup(name, kindCounter, nil, labels, func([]float64) any { return new(Counter) }).(*Counter)
	return s
}

// Inc adds one.
//
//qatk:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
//
//qatk:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Gauge returns the gauge series for name+labels, registering it on first
// use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	s, _ := r.lookup(name, kindGauge, nil, labels, func([]float64) any { return new(Gauge) }).(*Gauge)
	return s
}

// Set stores v.
//
//qatk:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (negative deltas decrement).
//
//qatk:hotpath
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds    []float64 // ascending upper bounds (le); +Inf implicit
	counts    []atomic.Uint64
	sumBits   atomic.Uint64
	count     atomic.Uint64
	exemplars []atomic.Pointer[exemplar] // one slot per bucket + the +Inf overflow
}

// exemplar is one traced observation pinned to a histogram bucket, in the
// OpenMetrics sense: the observed value, the trace that produced it, and
// when. Buckets keep only the most recent exemplar.
type exemplar struct {
	value   float64
	traceID string
	ts      time.Time
}

// Histogram returns the histogram series for name+labels with the given
// ascending bucket upper bounds (nil means DefBuckets), registering it on
// first use. Bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	s, _ := r.lookup(name, kindHistogram, buckets, labels, func(bounds []float64) any {
		return &Histogram{
			bounds:    bounds,
			counts:    make([]atomic.Uint64, len(bounds)),
			exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
		}
	}).(*Histogram)
	return s
}

// Observe records one observation. A value exactly on a bucket's upper
// bound counts into that bucket (le is inclusive, as in Prometheus).
//
//qatk:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Exemplar pins a traced observation to the bucket covering v, replacing
// any previous exemplar there. The bucket line then carries an
// OpenMetrics exemplar (`# {trace_id="..."} value timestamp`) so a scrape
// links the latency distribution back to a concrete retained trace.
// Callers gate this on their own opt-in flag; the histogram itself stays
// format-compatible when no exemplar was ever recorded.
func (h *Histogram) Exemplar(v float64, traceID string, ts time.Time) {
	if h == nil || traceID == "" {
		return
	}
	i := len(h.bounds) // +Inf overflow slot
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.exemplars[i].Store(&exemplar{value: v, traceID: traceID, ts: ts})
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// formatFloat renders a float the way the Prometheus text format expects
// (shortest round-trip representation; integers print without a dot).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// famSnapshot is one family's render view: its series handles copied out
// under the registry lock so rendering never reads the live series maps
// (which Registry.lookup mutates under the same lock).
type famSnapshot struct {
	name   string
	kind   metricKind
	sigs   []string // sorted rendered label sets
	series []any    // handle per sig, same order
}

// WriteProm renders every registered family in the Prometheus text
// exposition format, deterministically ordered: families sorted by name,
// series sorted by their rendered label set.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Self-instrumentation: the counter is bumped before the snapshot so
	// the rendered exposition includes the scrape reading it; the duration
	// is observed after rendering, so each scrape reports the cost of the
	// ones before it.
	start := r.now()
	r.Counter(MetricScrapeTotal).Inc()
	defer func() {
		r.Histogram(MetricScrapeSeconds, ScrapeBuckets).Observe(r.now().Sub(start).Seconds())
	}()
	// Snapshot family names, series sigs and handle pointers under the
	// lock; the atomic series values are then read lock-free, so a scrape
	// concurrent with first-use series creation is race-free.
	r.mu.Lock()
	snaps := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		snap := famSnapshot{name: f.name, kind: f.kind, sigs: make([]string, 0, len(f.series))}
		for sig := range f.series {
			snap.sigs = append(snap.sigs, sig)
		}
		sort.Strings(snap.sigs)
		snap.series = make([]any, len(snap.sigs))
		for i, sig := range snap.sigs {
			snap.series[i] = f.series[sig]
		}
		snaps = append(snaps, snap)
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	for _, f := range snaps {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for i, sig := range f.sigs {
			if err := writeSeries(w, f.name, sig, f.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one labeled series of a family.
func writeSeries(w io.Writer, name, sig string, series any) error {
	switch s := series.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, braced(sig), s.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, braced(sig), formatFloat(s.Value()))
		return err
	case *Histogram:
		cumulative := uint64(0)
		for i, b := range s.bounds {
			cumulative += s.counts[i].Load()
			le := L("le", formatFloat(b))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, braced(joinSig(sig, le)), cumulative, exemplarSuffix(s, i)); err != nil {
				return err
			}
		}
		// Observe bumps the matched bucket before the total count, so a
		// concurrent scrape can see cumulative > Count(); clamp the +Inf
		// bucket and _count to the same value to keep the rendered
		// histogram monotonic (+Inf bucket == _count always holds).
		count := s.Count()
		if cumulative > count {
			count = cumulative
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, braced(joinSig(sig, L("le", "+Inf"))), count, exemplarSuffix(s, len(s.bounds))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(sig), formatFloat(s.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(sig), count)
		return err
	}
	return nil
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for one
// bucket line, or "" when the bucket has none. Timestamps render as
// seconds with millisecond precision, per the OpenMetrics text format.
func exemplarSuffix(h *Histogram, i int) string {
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	ts := float64(e.ts.UnixMilli()) / 1000
	return fmt.Sprintf(" # {trace_id=%q} %s %s", e.traceID, formatFloat(e.value), strconv.FormatFloat(ts, 'f', 3, 64))
}

// braced wraps a non-empty rendered label set in {…}.
func braced(sig string) string {
	if sig == "" {
		return ""
	}
	return "{" + sig + "}"
}

// joinSig appends one more label to a rendered label set.
func joinSig(sig string, l Label) string {
	extra := l.Key + "=" + strconv.Quote(l.Value)
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

// Handler serves the exposition at an HTTP endpoint (mounted as /metrics
// on the questd probe mux).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
