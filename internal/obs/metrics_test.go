package obs

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPromExpositionGolden pins the full text exposition of a mixed
// registry byte for byte: family ordering is alphabetical, series
// ordering follows the rendered label set, histograms emit cumulative
// buckets plus _sum/_count — the format a Prometheus scraper parses.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry().WithClock(func() time.Time { return time.Unix(0, 0) })
	r.Counter("quest_http_requests_total", L("code", "200")).Add(3)
	r.Counter("quest_http_requests_total", L("code", "500")).Inc()
	r.Counter("qatk_pipeline_documents_total").Add(7)
	r.Gauge("build_info", L("version", "(devel)"), L("go_version", "go1.22")).Set(1)
	h := r.Histogram("quest_http_request_duration_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE build_info gauge
build_info{go_version="go1.22",version="(devel)"} 1
# TYPE obs_scrape_seconds histogram
obs_scrape_seconds_bucket{le="1e-05"} 0
obs_scrape_seconds_bucket{le="0.0001"} 0
obs_scrape_seconds_bucket{le="0.001"} 0
obs_scrape_seconds_bucket{le="0.01"} 0
obs_scrape_seconds_bucket{le="0.1"} 0
obs_scrape_seconds_bucket{le="1"} 0
obs_scrape_seconds_bucket{le="+Inf"} 0
obs_scrape_seconds_sum 0
obs_scrape_seconds_count 0
# TYPE obs_scrape_total counter
obs_scrape_total 1
# TYPE qatk_pipeline_documents_total counter
qatk_pipeline_documents_total 7
# TYPE quest_http_request_duration_seconds histogram
quest_http_request_duration_seconds_bucket{le="0.1"} 1
quest_http_request_duration_seconds_bucket{le="1"} 2
quest_http_request_duration_seconds_bucket{le="+Inf"} 3
quest_http_request_duration_seconds_sum 2.55
quest_http_request_duration_seconds_count 3
# TYPE quest_http_requests_total counter
quest_http_requests_total{code="200"} 3
quest_http_requests_total{code="500"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
	// The exposition is deterministic across renders, apart from the
	// scrape self-instrumentation, which necessarily moves per render.
	var again strings.Builder
	if err := r.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if got := stripScrapeLines(again.String()); got != stripScrapeLines(sb.String()) {
		t.Errorf("two renders of the same registry differ beyond scrape self-instrumentation:\n%s\nvs\n%s",
			got, stripScrapeLines(sb.String()))
	}
}

// stripScrapeLines removes the obs_scrape_* families from an exposition.
func stripScrapeLines(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if strings.Contains(line, "obs_scrape_") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// TestScrapeSelfInstrumentationGolden pins the second scrape of a fresh
// registry under a fixed clock: the first WriteProm incremented the
// counter and observed one zero-duration render, so the second exposition
// shows obs_scrape_total 2 and a one-observation histogram — the scrape
// cost made visible, deterministically, in a stable family order.
func TestScrapeSelfInstrumentationGolden(t *testing.T) {
	r := NewRegistry().WithClock(func() time.Time { return time.Unix(0, 0) })
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE obs_scrape_seconds histogram
obs_scrape_seconds_bucket{le="1e-05"} 1
obs_scrape_seconds_bucket{le="0.0001"} 1
obs_scrape_seconds_bucket{le="0.001"} 1
obs_scrape_seconds_bucket{le="0.01"} 1
obs_scrape_seconds_bucket{le="0.1"} 1
obs_scrape_seconds_bucket{le="1"} 1
obs_scrape_seconds_bucket{le="+Inf"} 1
obs_scrape_seconds_sum 0
obs_scrape_seconds_count 1
# TYPE obs_scrape_total counter
obs_scrape_total 2
`
	if sb.String() != want {
		t.Errorf("scrape self-instrumentation mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramBucketBoundaries: le is inclusive — an observation exactly
// on a bound lands in that bucket, one epsilon above falls through to the
// next, and values beyond the last bound only appear in +Inf (the total
// count).
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qatk_pipeline_engine_seconds", []float64{1, 2})
	h.Observe(1)   // exactly on the first bound → bucket le=1
	h.Observe(1.5) // → bucket le=2
	h.Observe(2)   // exactly on the second bound → bucket le=2
	h.Observe(3)   // beyond every bound → +Inf only

	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Errorf("bucket le=2 = %d, want 2", got)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 7.5 {
		t.Errorf("sum = %g, want 7.5", got)
	}
	// Rendered buckets are cumulative: 1, 3, 4.
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`qatk_pipeline_engine_seconds_bucket{le="1"} 1`,
		`qatk_pipeline_engine_seconds_bucket{le="2"} 3`,
		`qatk_pipeline_engine_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("exposition missing %q:\n%s", line, sb.String())
		}
	}
}

// TestNilRegistryIsNoOp: the disabled state hands out nil handles whose
// methods do nothing — the contract the pipeline hot path relies on.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("qatk_pipeline_documents_total")
	g := r.Gauge("quest_http_requests_inflight")
	h := r.Histogram("quest_http_request_duration_seconds", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles accumulated state")
	}
	if err := r.WriteProm(io.Discard); err != nil {
		t.Errorf("nil registry WriteProm = %v", err)
	}
}

// TestKindClashYieldsNoOp: re-registering a name as a different kind must
// not panic (qatklint/paniccontract) — it yields a nil no-op handle and
// the original family survives.
func TestKindClashYieldsNoOp(t *testing.T) {
	r := NewRegistry()
	r.Counter("qatk_pipeline_documents_total").Add(2)
	if g := r.Gauge("qatk_pipeline_documents_total"); g != nil {
		t.Error("kind clash returned a live gauge")
	}
	if got := r.Counter("qatk_pipeline_documents_total").Value(); got != 2 {
		t.Errorf("original counter lost: %d", got)
	}
}

// TestCounterConcurrency: handles are safe without external locking.
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qatk_pipeline_documents_total")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

// TestScrapeDuringSeriesCreation: a /metrics render concurrent with
// first-use series creation must be race-free — WriteProm snapshots each
// family's series under the registry lock instead of walking the live
// maps lookup mutates. Run under -race this is the regression test for
// the concurrent map read/write crash.
func TestScrapeDuringSeriesCreation(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			r.Counter("quest_http_requests_total", L("code", strconv.Itoa(i))).Inc()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			r.Histogram("quest_http_request_duration_seconds", nil, L("route", strconv.Itoa(i))).Observe(0.1)
		}
	}()
	for i := 0; i < 100; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestHistogramBucketsFixedByFamily: bucket bounds are set by the first
// registration of a family; a later caller asking for different bounds
// (even for a brand-new label set) gets series built from the original
// bounds, so one exposition family never mixes le sets.
func TestHistogramBucketsFixedByFamily(t *testing.T) {
	r := NewRegistry()
	first := r.Histogram("qatk_pipeline_engine_seconds", []float64{1, 2}, L("engine", "tok"))
	first.Observe(1.5)
	second := r.Histogram("qatk_pipeline_engine_seconds", []float64{5, 10, 20}, L("engine", "ner"))
	second.Observe(1.5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`qatk_pipeline_engine_seconds_bucket{engine="ner",le="1"} 0`,
		`qatk_pipeline_engine_seconds_bucket{engine="ner",le="2"} 1`,
		`qatk_pipeline_engine_seconds_bucket{engine="tok",le="2"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, `le="5"`) || strings.Contains(got, `le="10"`) {
		t.Errorf("later caller's divergent buckets leaked into the family:\n%s", got)
	}
}

// TestHandlerServesExposition: the HTTP handler answers with the text
// exposition content type and body.
func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("quest_http_requests_total").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "quest_http_requests_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
