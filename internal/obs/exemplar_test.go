package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramExemplarGolden pins the OpenMetrics exemplar rendering
// byte for byte: the bucket covering the exemplar's value carries
// `# {trace_id="..."} value timestamp`, other buckets are untouched, and
// a later exemplar in the same bucket replaces the earlier one.
func TestHistogramExemplarGolden(t *testing.T) {
	r := NewRegistry().WithClock(func() time.Time { return time.Unix(0, 0) })
	h := r.Histogram("quest_http_request_duration_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	ts := time.Unix(1754600000, 250_000_000)
	h.Exemplar(0.5, "00000000000000ff", ts)
	h.Exemplar(2, "0000000000000abc", ts.Add(time.Second))
	// Same-bucket replacement: only the latest exemplar survives.
	h.Exemplar(0.3, "0000000000000042", ts.Add(2*time.Second))

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE quest_http_request_duration_seconds histogram
quest_http_request_duration_seconds_bucket{le="0.1"} 1
quest_http_request_duration_seconds_bucket{le="1"} 2 # {trace_id="0000000000000042"} 0.3 1754600002.250
quest_http_request_duration_seconds_bucket{le="+Inf"} 3 # {trace_id="0000000000000abc"} 2 1754600001.250
quest_http_request_duration_seconds_sum 2.55
quest_http_request_duration_seconds_count 3
`
	got := sb.String()
	if i := strings.Index(got, "# TYPE quest_http"); i >= 0 {
		got = got[i:]
	}
	if got != want {
		t.Errorf("exemplar exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramExemplarNoOpPaths: a nil histogram and an empty trace ID
// record nothing, and a histogram without exemplars renders exactly as
// before the feature existed.
func TestHistogramExemplarNoOpPaths(t *testing.T) {
	var nilH *Histogram
	nilH.Exemplar(1, "abc", time.Unix(0, 0)) // must not panic

	r := NewRegistry().WithClock(func() time.Time { return time.Unix(0, 0) })
	h := r.Histogram("quest_http_request_duration_seconds", []float64{0.1, 1})
	h.Observe(0.5)
	h.Exemplar(0.5, "", time.Unix(0, 0)) // empty trace ID ignored

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "#  {") || strings.Contains(sb.String(), "trace_id") {
		t.Errorf("exemplar-free histogram rendered an exemplar:\n%s", sb.String())
	}
}

// TestTracerSpanNameCap is the regression test for the unbounded
// per-name stats map: distinct names beyond the cap get no stat entry,
// the overflow counter increments, established names keep aggregating,
// and the ring still records every span.
func TestTracerSpanNameCap(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(8, WithClock(func() time.Time { return time.Unix(0, 0) }), WithMaxSpanNames(2))
	tr.Instrument(r.Counter(MetricSpanNamesDroppedTotal))

	tr.Start(nil, "a").End(nil)
	tr.Start(nil, "b").End(nil)
	tr.Start(nil, "c").End(nil) // over the cap: dropped from stats
	tr.Start(nil, "a").End(nil) // established name still aggregates

	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats holds %d names, want 2: %+v", len(stats), stats)
	}
	for _, st := range stats {
		if st.Name == "c" {
			t.Fatalf("over-cap name leaked into stats: %+v", stats)
		}
		if st.Name == "a" && st.Count != 2 {
			t.Fatalf("established name stopped aggregating: %+v", st)
		}
	}
	if got := r.Counter(MetricSpanNamesDroppedTotal).Value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4 (cap must not touch the ring)", got)
	}
}
