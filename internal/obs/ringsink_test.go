package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingWriter blocks every Write until release is closed — a stand-in
// for a wedged disk or pipe behind the log destination.
type blockingWriter struct {
	release chan struct{}
	mu      sync.Mutex
	lines   []string
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	w.lines = append(w.lines, string(p))
	w.mu.Unlock()
	return len(p), nil
}

// TestRingSinkRetainsRecent: the ring keeps the newest lines in order and
// evicts the oldest beyond capacity.
func TestRingSinkRetainsRecent(t *testing.T) {
	s := NewRingSink(nil, 3)
	for _, line := range []string{"a", "b", "c", "d"} {
		if _, err := s.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Recent(0)
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Recent = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Recent = %v, want %v", got, want)
		}
	}
	if got := s.Recent(2); len(got) != 2 || got[0] != "c" || got[1] != "d" {
		t.Errorf("Recent(2) = %v, want [c d]", got)
	}
	if s.Dropped() != 0 {
		t.Errorf("ring-only sink dropped %d lines", s.Dropped())
	}
	s.Close() // no-op on a ring-only sink
}

// TestRingSinkNeverBlocksOnStuckWriter: the guarantee the flight recorder
// depends on — a logger whose destination has wedged must keep absorbing
// Logger.Info calls without blocking, dropping forwarded lines and
// counting every drop, while the ring still retains the newest lines.
func TestRingSinkNeverBlocksOnStuckWriter(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	s := NewRingSink(w, 4)
	s.Instrument(NewRegistry().Counter("obs_test_dropped_total"))
	logger := NewLogger(s, LevelInfo).WithClock(func() time.Time { return time.Unix(0, 0) })

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Queue capacity is 4 and one line may be in-flight inside the
		// blocked Write; far more writes than that must all return.
		for i := 0; i < 100; i++ {
			logger.Info("event", L("i", "x"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Logger.Info blocked on a stuck underlying writer")
	}
	if s.Dropped() == 0 {
		t.Error("no lines counted as dropped despite a full forward queue")
	}
	if got := len(s.Recent(0)); got != 4 {
		t.Errorf("ring retained %d lines, want 4", got)
	}
	close(w.release)
	s.Close()
	w.mu.Lock()
	delivered := len(w.lines)
	w.mu.Unlock()
	if delivered == 0 {
		t.Error("unblocked writer received no lines after Close drained the queue")
	}
	if uint64(delivered)+s.Dropped() != 100 {
		t.Errorf("delivered %d + dropped %d != 100 written", delivered, s.Dropped())
	}
}

// TestRingSinkConcurrentWriters: many goroutines log through one sink
// under -race; every line is either delivered or counted dropped, and
// Recent stays well-formed.
func TestRingSinkConcurrentWriters(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	close(w.release) // writer never blocks in this test
	s := NewRingSink(w, 64)
	logger := NewLogger(s, LevelInfo)

	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := logger.With(L("writer", strings.Repeat("w", g+1)))
			for i := 0; i < perWriter; i++ {
				l.Info("concurrent event")
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	w.mu.Lock()
	delivered := len(w.lines)
	w.mu.Unlock()
	if uint64(delivered)+s.Dropped() != writers*perWriter {
		t.Errorf("delivered %d + dropped %d != %d written", delivered, s.Dropped(), writers*perWriter)
	}
	for _, line := range s.Recent(0) {
		if !strings.HasPrefix(line, "ts=") || strings.HasSuffix(line, "\n") {
			t.Fatalf("malformed retained line %q", line)
		}
	}
}

// TestRingSinkWriteAfterClose: lines written after Close stay in the ring
// and are not forwarded — and nothing panics.
func TestRingSinkWriteAfterClose(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	close(w.release)
	s := NewRingSink(w, 4)
	if _, err := s.Write([]byte("before\n")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Write([]byte("after\n")); err != nil {
		t.Fatal(err)
	}
	got := s.Recent(0)
	if len(got) != 2 || got[1] != "after" {
		t.Errorf("Recent after Close = %v", got)
	}
}
