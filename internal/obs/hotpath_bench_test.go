package obs

import "testing"

// The //qatk:hotpath metric mutators in numbers: every benchmark here
// must report 0 allocs/op, in both the live and the disabled (nil
// handle) state. `make bench-alloc` asserts exactly that via benchjson
// -assert-zero-allocs, turning the hotalloc analyzer's static contract
// into a measured one.

func BenchmarkHotCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHotCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_add_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(3)
	}
}

func BenchmarkHotCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHotGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHotGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge_add")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(0.5)
	}
}

func BenchmarkHotGaugeSetDisabled(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(1)
	}
}

func BenchmarkHotHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkHotHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
