package obs

import (
	"runtime"
	"runtime/debug"
)

// Build identity, surfaced two ways: /healthz JSON (so a probe identifies
// which build is answering) and the conventional build_info gauge whose
// labels carry the identity and whose value is constantly 1.

// MetricBuildInfo is the sanctioned prefix-free Prometheus identity gauge.
const MetricBuildInfo = "build_info"

// BuildIdentity describes the running binary as recorded by the Go
// toolchain.
type BuildIdentity struct {
	Version   string `json:"version"`            // main module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"`         // toolchain that built the binary
	Revision  string `json:"revision,omitempty"` // VCS revision, "" outside a stamped build
	Time      string `json:"time,omitempty"`     // VCS commit time, "" outside a stamped build
	Modified  bool   `json:"modified,omitempty"` // dirty working tree at build time
}

// Build reads the binary's identity via runtime/debug.ReadBuildInfo.
// Fields missing from the build (no VCS stamping, test binaries) stay
// zero.
func Build() BuildIdentity {
	id := BuildIdentity{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return id
	}
	id.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			id.Revision = s.Value
		case "vcs.time":
			id.Time = s.Value
		case "vcs.modified":
			id.Modified = s.Value == "true"
		}
	}
	return id
}

// RegisterBuildInfo registers the build_info gauge (value 1, identity in
// the labels) on the registry and returns the identity it recorded.
func RegisterBuildInfo(r *Registry) BuildIdentity {
	id := Build()
	labels := []Label{
		L("version", id.Version),
		L("go_version", id.GoVersion),
	}
	if id.Revision != "" {
		labels = append(labels, L("revision", id.Revision))
	}
	r.Gauge(MetricBuildInfo, labels...).Set(1)
	return id
}
