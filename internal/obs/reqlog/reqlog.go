// Package reqlog builds one structured wide event per request — the
// canonical-log-line pattern — assembled along the whole QUEST serving
// path: the quest middleware opens the event (method, route, status,
// total latency, trace ID), the shard router records per-shard attempt
// outcomes, and the classifier records per-stage timers through a
// zero-alloc StageClock carried on the request context. A tail sampler
// retains full events only when they matter (slow, degraded, hedged,
// non-2xx, panic, breaker trip — plus always-sample and head-sample
// escape hatches) in a fixed-capacity ring served at /debug/requests,
// frozen into flight-recorder bundles, and rendered by `qatk requests`.
//
// Everything is nil-safe, mirroring the obs contract: a nil *Log hands
// out nil *Builder handles, a nil *Builder hands out a nil *StageClock,
// and every method on either is a cheap no-op — the disabled request
// path costs nil checks, not allocations.
package reqlog

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one timed phase of the serving path. The set mirrors
// the QATK query pipeline: tokenize and annotate (the live annotate path
// feeding feature extraction), candidate scoring, ranking, the shard
// router's merge, and the code dedup collapse.
type Stage int

// Stages in serving-path order.
const (
	StageTokenize Stage = iota
	StageAnnotate
	StageScore
	StageRank
	StageMerge
	StageDedup
	numStages
)

// stageNames index by Stage.
var stageNames = [numStages]string{"tokenize", "annotate", "score", "rank", "merge", "dedup"}

// String names the stage as it appears in events and reports.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "stage" + strconv.Itoa(int(s))
	}
	return stageNames[s]
}

// StageNames lists every stage name in serving-path order.
func StageNames() []string {
	out := make([]string, numStages)
	for i := range stageNames {
		out[i] = stageNames[i]
	}
	return out
}

// StageClock accumulates per-stage wall time for one request. It is
// carried on the request context (inside the event Builder) and read on
// the classifier hot path, so the disabled state — a nil *StageClock —
// must cost nothing: Start returns the zero time without reading the
// clock, and Lap is a plain nil check. The accumulators are atomics
// because scatter queries time stages from several shard goroutines at
// once.
type StageClock struct {
	now   func() time.Time
	nanos [numStages]atomic.Int64
}

// Start reads the clock for a stage measurement about to begin. On a nil
// clock it returns the zero time without touching the wall clock.
//
//qatk:hotpath
func (c *StageClock) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.now()
}

// Lap credits the time since `since` to stage s and returns the current
// instant, so consecutive stages chain measurements with one clock read
// each. A nil clock is a no-op returning the zero time.
//
//qatk:hotpath
func (c *StageClock) Lap(s Stage, since time.Time) time.Time {
	if c == nil {
		return time.Time{}
	}
	now := c.now()
	c.nanos[s].Add(now.Sub(since).Nanoseconds())
	return now
}

// Stage reads the accumulated duration of one stage.
func (c *StageClock) Stage(s Stage) time.Duration {
	if c == nil || s < 0 || s >= numStages {
		return 0
	}
	return time.Duration(c.nanos[s].Load())
}

// timings snapshots the non-zero stages in serving-path order.
func (c *StageClock) timings() []StageTiming {
	if c == nil {
		return nil
	}
	var out []StageTiming
	for i := Stage(0); i < numStages; i++ {
		if d := time.Duration(c.nanos[i].Load()); d > 0 {
			out = append(out, StageTiming{Name: i.String(), Duration: d})
		}
	}
	return out
}

// StageTiming is one stage's share of a request, as serialized in events.
type StageTiming struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// ShardAttempt is one sub-query attempt's outcome as the router saw it:
// which shard, which attempt (1 = primary, 2 = hedge), the breaker state
// at admission, the effective deadline the attempt ran under, how long
// it took, whether it won the race, and how it failed. An attempt
// rejected outright by an open breaker records attempt 0.
type ShardAttempt struct {
	Shard   int    `json:"shard"`
	Attempt int    `json:"attempt"`
	Hedged  bool   `json:"hedged,omitempty"`
	Winner  bool   `json:"winner,omitempty"`
	Breaker string `json:"breaker,omitempty"`
	// Replica names the read replica that served the attempt (hedges
	// routed to a fresh replica, and attempt-3 rescues); empty for
	// primary-shard attempts.
	Replica  string        `json:"replica,omitempty"`
	Deadline time.Duration `json:"deadline_ns,omitempty"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Event is one request's wide event: everything the serving path learned
// about it, in one record. Durations serialize as integer nanoseconds
// (the encoding/json rendering of time.Duration), so events round-trip
// bit-identically through /debug/requests, flight bundles, and `qatk
// requests`.
type Event struct {
	TraceID  string        `json:"trace_id"`
	Method   string        `json:"method"`
	Route    string        `json:"route"`
	Status   int           `json:"status"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`

	// Query identity, recorded by the /api/recommend handler.
	Part     string `json:"part,omitempty"`
	Features int    `json:"features,omitempty"`

	// Outcome flags mirroring the degradation contract of the response
	// envelope.
	Degraded     bool  `json:"degraded,omitempty"`
	Hedged       bool  `json:"hedged,omitempty"`
	Scatter      bool  `json:"scatter,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
	// Replica marks an answer at least partly served by a read replica;
	// Stale additionally marks a contributing replica as beyond the
	// router's apply-lag bound (stale: true in the envelope).
	Replica bool `json:"replica,omitempty"`
	Stale   bool `json:"stale,omitempty"`

	// Panic carries the recovered panic value; BreakerTrips the shards
	// whose breaker tripped open during this request.
	Panic        string `json:"panic,omitempty"`
	BreakerTrips []int  `json:"breaker_trips,omitempty"`

	Stages []StageTiming  `json:"stages,omitempty"`
	Shards []ShardAttempt `json:"shards,omitempty"`

	// Reasons lists why the tail sampler retained the event (empty on an
	// event that was observed but dropped — such events never leave the
	// sampler).
	Reasons []string `json:"reasons"`
}

// TraceIDString renders a trace ID the way exemplars and events carry
// it: fixed-width lowercase hex.
func TraceIDString(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Builder accumulates one request's wide event as it travels the serving
// path. The quest middleware creates it (Log.Begin) and finishes it
// (Finish); the layers in between record through the nil-safe setters.
// The mutex serializes scatter-goroutine recording against Finish.
type Builder struct {
	log   *Log
	start time.Time
	clock StageClock

	mu       sync.Mutex
	method   string         //qatk:guardedby mu
	route    string         //qatk:guardedby mu
	part     string         //qatk:guardedby mu
	features int            //qatk:guardedby mu
	degraded bool           //qatk:guardedby mu
	hedged   bool           //qatk:guardedby mu
	scatter  bool           //qatk:guardedby mu
	replica  bool           //qatk:guardedby mu
	stale    bool           //qatk:guardedby mu
	failed   []int          //qatk:guardedby mu
	panicMsg string         //qatk:guardedby mu
	trips    []int          //qatk:guardedby mu
	attempts []ShardAttempt //qatk:guardedby mu
}

// Clock returns the builder's stage clock (nil from a nil builder, so
// the classifier's timing calls vanish when request logging is off).
func (b *Builder) Clock() *StageClock {
	if b == nil {
		return nil
	}
	return &b.clock
}

// Query records the query identity of a recommendation request.
func (b *Builder) Query(part string, features int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.part, b.features = part, features
	b.mu.Unlock()
}

// Outcome records the degradation contract of the response envelope.
func (b *Builder) Outcome(degraded, hedged, scatter bool, failedShards []int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.degraded, b.hedged, b.scatter = degraded, hedged, scatter
	if len(failedShards) > 0 {
		b.failed = append(b.failed[:0], failedShards...)
	}
	b.mu.Unlock()
}

// ReplicaServed records the replica-serving outcome flags: at least one
// sub-answer came from a read replica, and whether a contributing
// replica was beyond the apply-lag bound.
func (b *Builder) ReplicaServed(replica, stale bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.replica, b.stale = replica, stale
	b.mu.Unlock()
}

// Attempt records one shard sub-query attempt outcome. Safe from the
// router's scatter and attempt goroutines.
func (b *Builder) Attempt(a ShardAttempt) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.attempts = append(b.attempts, a)
	b.mu.Unlock()
}

// MarkWinner flags the recorded attempt that won its sub-query race.
func (b *Builder) MarkWinner(shard, attempt int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	for i := range b.attempts {
		if b.attempts[i].Shard == shard && b.attempts[i].Attempt == attempt {
			b.attempts[i].Winner = true
			break
		}
	}
	b.mu.Unlock()
}

// SetPanic records a recovered handler panic (a hard retention reason).
func (b *Builder) SetPanic(value string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.panicMsg = value
	b.mu.Unlock()
}

// BreakerTrip records a shard breaker tripping open during this request
// (a hard retention reason).
func (b *Builder) BreakerTrip(shard int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.trips = append(b.trips, shard)
	b.mu.Unlock()
}

// Finish seals the event with its response status, trace ID and total
// latency, offers it to the tail sampler, and reports whether it was
// retained. A nil builder reports false.
func (b *Builder) Finish(status int, traceID uint64, d time.Duration) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	ev := Event{
		TraceID:  TraceIDString(traceID),
		Method:   b.method,
		Route:    b.route,
		Status:   status,
		Start:    b.start,
		Duration: d,
		Part:     b.part,
		Features: b.features,
		Degraded: b.degraded,
		Hedged:   b.hedged,
		Scatter:  b.scatter,
		Replica:  b.replica,
		Stale:    b.stale,
		Panic:    b.panicMsg,
	}
	if len(b.failed) > 0 {
		ev.FailedShards = append([]int(nil), b.failed...)
	}
	if len(b.trips) > 0 {
		ev.BreakerTrips = append([]int(nil), b.trips...)
	}
	if len(b.attempts) > 0 {
		ev.Shards = append([]ShardAttempt(nil), b.attempts...)
	}
	b.mu.Unlock()
	ev.Stages = b.clock.timings()
	return b.log.finish(ev)
}

// ctxKey carries the *Builder on the request context.
type ctxKey struct{}

// NewContext returns ctx carrying the builder. A nil builder returns ctx
// unchanged, so the disabled path allocates no context node.
func NewContext(ctx context.Context, b *Builder) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, b)
}

// From extracts the request's event builder (nil when request logging is
// off or ctx carries none).
func From(ctx context.Context) *Builder {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(ctxKey{}).(*Builder)
	return b
}

// ClockFrom extracts the request's stage clock; nil-safe end to end, so
// the shard worker passes it straight into the classifier.
func ClockFrom(ctx context.Context) *StageClock {
	return From(ctx).Clock()
}
