package reqlog

import (
	"context"
	"testing"
	"time"
)

// BenchmarkHotStageClockLap measures the enabled stage-timing path: one
// clock read plus one atomic add per lap. bench-alloc asserts 0
// allocs/op — the wide event must not cost the classifier allocations.
func BenchmarkHotStageClockLap(b *testing.B) {
	l := New(Config{Capacity: 4})
	sc := l.Begin("GET", "/bench").Clock()
	b.ReportAllocs()
	t := sc.Start()
	for i := 0; i < b.N; i++ {
		t = sc.Lap(StageScore, t)
	}
}

// BenchmarkStageClockLapDisabled measures the disabled path: a nil
// clock extracted from a bare context, as the classifier sees it when
// request logging is off. Must be 0 allocs/op and never read the wall
// clock.
func BenchmarkStageClockLapDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := ClockFrom(ctx)
		t := sc.Start()
		sc.Lap(StageScore, t)
	}
}

// BenchmarkBuilderRecordDisabled measures the router's recording calls
// against a nil builder — the shape the whole serving path takes when
// request logging is off. Must be 0 allocs/op: the ShardAttempt literal
// must stay on the stack.
func BenchmarkBuilderRecordDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rb := From(ctx)
		rb.Attempt(ShardAttempt{Shard: 1, Attempt: 1, Breaker: "closed", Duration: time.Millisecond})
		rb.MarkWinner(1, 1)
		rb.Outcome(false, false, false, nil)
	}
}
