package reqlog

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Metric names the request log emits (qatklint/metricname: package-level
// constants, snake_case, subsystem prefix, unit suffix).
const (
	// MetricReqObservedTotal counts every finished wide event, retained
	// or not.
	MetricReqObservedTotal = "obs_req_observed_total"
	// MetricReqRetainedTotal counts events the tail sampler kept, by
	// retention reason (label "reason"; an event retained for several
	// reasons counts once per reason).
	MetricReqRetainedTotal = "obs_req_retained_total"
	// MetricReqDroppedTotal counts events observed but not retained.
	MetricReqDroppedTotal = "obs_req_dropped_total"
	// MetricReqTailThresholdSeconds gauges the rolling latency threshold
	// above which an event is retained as slow.
	MetricReqTailThresholdSeconds = "obs_req_tail_threshold_seconds"
)

// Retention reasons, as recorded in Event.Reasons and the reason label.
const (
	ReasonAlways   = "always"
	ReasonHead     = "head_sample"
	ReasonSlow     = "slow"
	ReasonDegraded = "degraded"
	ReasonHedged   = "hedged"
	ReasonStatus   = "status"
	ReasonPanic    = "panic"
	ReasonBreaker  = "breaker"
)

// Reasons lists every retention reason in evaluation order.
var Reasons = []string{
	ReasonAlways, ReasonHead, ReasonSlow, ReasonDegraded,
	ReasonHedged, ReasonStatus, ReasonPanic, ReasonBreaker,
}

// Defaults for zero Config fields.
const (
	// DefaultCapacity is the retained-event ring size.
	DefaultCapacity = 256
	// DefaultTailFactor multiplies the rolling p99 estimate into the
	// slow-retention threshold: an event is slow when it exceeds twice
	// the recent p99 bucket bound.
	DefaultTailFactor = 2.0
	// DefaultMinCount is how many latency observations the rolling
	// window needs before the slow threshold engages (a cold sampler
	// retaining everything as "slow" would flood the ring at startup).
	DefaultMinCount = 64
	// decayEvery halves the rolling latency window once this many
	// observations accumulate, so the p99 estimate tracks the recent
	// past instead of the process lifetime.
	decayEvery = 4096
)

// Config wires a Log.
type Config struct {
	// Capacity bounds the retained-event ring (default 256).
	Capacity int
	// SampleAll retains every event (the debugging escape hatch).
	SampleAll bool
	// HeadEvery head-samples one event in every N regardless of the tail
	// rules, so the ring always carries a baseline of ordinary requests.
	// 0 disables head sampling.
	HeadEvery int
	// TailFactor scales the rolling p99 estimate into the slow-retention
	// threshold (default 2.0). MinCount is how many observations the
	// window needs before the threshold engages (default 64).
	TailFactor float64
	MinCount   int
	// Registry receives the obs_req_* families. Nil disables metrics.
	Registry *obs.Registry
	// Clock is the injected time source (default time.Now).
	Clock func() time.Time
}

// Log is the tail-sampled wide-event store. A nil *Log is disabled:
// Begin returns a nil builder and every method is a no-op.
type Log struct {
	cfg   Config
	clock func() time.Time

	observed  *obs.Counter
	dropped   *obs.Counter
	threshold *obs.Gauge
	retained  map[string]*obs.Counter

	mu          sync.Mutex
	ring        []Event  //qatk:guardedby mu
	next, count int      //qatk:guardedby mu
	seen        uint64   //qatk:guardedby mu — finished events, for head sampling
	latCounts   []uint64 //qatk:guardedby mu — rolling latency window (DefBuckets + overflow)
	latTotal    int      //qatk:guardedby mu
	thresholdNs int64    //qatk:guardedby mu — 0 until the window has MinCount observations
	stageNanos  [numStages]int64  //qatk:guardedby mu — totals across every finished event
	stageCounts [numStages]uint64 //qatk:guardedby mu
}

// New builds a request log. Zero Config fields take the package
// defaults.
func New(cfg Config) *Log {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.TailFactor <= 0 {
		cfg.TailFactor = DefaultTailFactor
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = DefaultMinCount
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	l := &Log{
		cfg:       cfg,
		clock:     cfg.Clock,
		observed:  cfg.Registry.Counter(MetricReqObservedTotal),
		dropped:   cfg.Registry.Counter(MetricReqDroppedTotal),
		threshold: cfg.Registry.Gauge(MetricReqTailThresholdSeconds),
		retained:  make(map[string]*obs.Counter, len(Reasons)),
		ring:      make([]Event, cfg.Capacity),
		latCounts: make([]uint64, len(obs.DefBuckets)+1),
	}
	for _, reason := range Reasons {
		l.retained[reason] = cfg.Registry.Counter(MetricReqRetainedTotal, obs.L("reason", reason))
	}
	return l
}

// Begin opens the wide event for one request. A nil log returns a nil
// builder, which every downstream recording call tolerates.
func (l *Log) Begin(method, route string) *Builder {
	if l == nil {
		return nil
	}
	b := &Builder{log: l, start: l.clock()}
	b.clock.now = l.clock
	b.mu.Lock()
	b.method, b.route = method, route
	b.mu.Unlock()
	return b
}

// finish runs the tail sampler over one sealed event: updates the
// rolling latency window and stage aggregates, decides retention, and
// pushes retained events into the ring. Reports whether the event was
// retained.
func (l *Log) finish(ev Event) bool {
	if l == nil {
		return false
	}
	l.observed.Inc()

	l.mu.Lock()
	l.seen++
	head := l.cfg.HeadEvery > 0 && (l.seen-1)%uint64(l.cfg.HeadEvery) == 0
	for _, st := range ev.Stages {
		for i := Stage(0); i < numStages; i++ {
			if st.Name == stageNames[i] {
				l.stageNanos[i] += st.Duration.Nanoseconds()
				l.stageCounts[i]++
				break
			}
		}
	}
	slowThreshold := time.Duration(l.thresholdNs)
	l.observeLatencyLocked(ev.Duration)

	ev.Reasons = retentionReasons(ev, l.cfg.SampleAll, head, slowThreshold)
	kept := len(ev.Reasons) > 0
	if kept {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % len(l.ring)
		if l.count < len(l.ring) {
			l.count++
		}
	}
	l.mu.Unlock()

	if !kept {
		l.dropped.Inc()
		return false
	}
	for _, reason := range ev.Reasons {
		l.retained[reason].Inc()
	}
	return true
}

// retentionReasons evaluates the sampling rules against one event. The
// slow rule only engages once the rolling window produced a threshold.
func retentionReasons(ev Event, all, head bool, slow time.Duration) []string {
	var out []string
	if all {
		out = append(out, ReasonAlways)
	}
	if head {
		out = append(out, ReasonHead)
	}
	if slow > 0 && ev.Duration > slow {
		out = append(out, ReasonSlow)
	}
	if ev.Degraded || len(ev.FailedShards) > 0 {
		out = append(out, ReasonDegraded)
	}
	if ev.Hedged {
		out = append(out, ReasonHedged)
	}
	if ev.Status < 200 || ev.Status >= 300 {
		out = append(out, ReasonStatus)
	}
	if ev.Panic != "" {
		out = append(out, ReasonPanic)
	}
	if len(ev.BreakerTrips) > 0 {
		out = append(out, ReasonBreaker)
	}
	return out
}

// observeLatencyLocked feeds one request latency into the rolling window
// and recomputes the slow threshold: the upper bound of the bucket
// covering the 99th percentile, scaled by TailFactor. Caller holds l.mu.
func (l *Log) observeLatencyLocked(d time.Duration) {
	s := d.Seconds()
	i := 0
	for ; i < len(obs.DefBuckets); i++ {
		if s <= obs.DefBuckets[i] {
			break
		}
	}
	l.latCounts[i]++
	l.latTotal++
	if l.latTotal >= decayEvery {
		total := 0
		for j := range l.latCounts {
			l.latCounts[j] /= 2
			total += int(l.latCounts[j])
		}
		l.latTotal = total
	}
	if l.latTotal < l.cfg.MinCount {
		return
	}
	need := uint64((99*l.latTotal + 99) / 100)
	var cum uint64
	bound := obs.DefBuckets[len(obs.DefBuckets)-1]
	for j, c := range l.latCounts {
		cum += c
		if cum >= need {
			if j < len(obs.DefBuckets) {
				bound = obs.DefBuckets[j]
			}
			break
		}
	}
	threshold := time.Duration(bound * l.cfg.TailFactor * float64(time.Second))
	l.thresholdNs = threshold.Nanoseconds()
	l.threshold.Set(threshold.Seconds())
}

// Threshold reports the current slow-retention threshold (0 while the
// rolling window is still filling).
func (l *Log) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.thresholdNs)
}

// Snapshot returns the retained events, newest first.
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.count)
	for i := 1; i <= l.count; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// StageTotal is one stage's aggregate over every finished event (not
// just the retained ones) — the per-stage breakdown cmd/loadgen reports.
type StageTotal struct {
	Name  string
	Count uint64
	Total time.Duration
}

// StageTotals reports the per-stage aggregates in serving-path order,
// skipping stages that never ran.
func (l *Log) StageTotals() []StageTotal {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []StageTotal
	for i := Stage(0); i < numStages; i++ {
		if l.stageCounts[i] > 0 {
			out = append(out, StageTotal{
				Name:  i.String(),
				Count: l.stageCounts[i],
				Total: time.Duration(l.stageNanos[i]),
			})
		}
	}
	return out
}
