package reqlog

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteReport pretty-prints retained wide events, newest first — the
// read side of the request log (`qatk requests <url|bundle>`). One block
// per event: the request line with trace ID and retention reasons, then
// the stage breakdown, then per-shard attempt outcomes.
func WriteReport(w io.Writer, events []Event) error {
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "no retained requests")
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeEvent(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// writeEvent renders one event block.
func writeEvent(w io.Writer, ev Event) error {
	line := fmt.Sprintf("%s %s -> %d in %s  trace=%s  [%s]",
		ev.Method, ev.Route, ev.Status, fmtDur(ev.Duration),
		ev.TraceID, strings.Join(ev.Reasons, ","))
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	if !ev.Start.IsZero() {
		if _, err := fmt.Fprintf(w, "  at %s\n", ev.Start.UTC().Format(time.RFC3339Nano)); err != nil {
			return err
		}
	}
	if ev.Part != "" {
		if _, err := fmt.Fprintf(w, "  query part=%s features=%d\n", ev.Part, ev.Features); err != nil {
			return err
		}
	}
	var flags []string
	if ev.Degraded {
		flags = append(flags, "degraded")
	}
	if ev.Scatter {
		flags = append(flags, "scatter")
	}
	if ev.Hedged {
		flags = append(flags, "hedged")
	}
	if len(ev.FailedShards) > 0 {
		flags = append(flags, "failed_shards="+intList(ev.FailedShards))
	}
	if len(ev.BreakerTrips) > 0 {
		flags = append(flags, "breaker_trips="+intList(ev.BreakerTrips))
	}
	if ev.Panic != "" {
		flags = append(flags, "panic="+ev.Panic)
	}
	if len(flags) > 0 {
		if _, err := fmt.Fprintf(w, "  outcome %s\n", strings.Join(flags, " ")); err != nil {
			return err
		}
	}
	if len(ev.Stages) > 0 {
		parts := make([]string, 0, len(ev.Stages))
		for _, st := range ev.Stages {
			parts = append(parts, st.Name+"="+fmtDur(st.Duration))
		}
		if _, err := fmt.Fprintf(w, "  stages %s\n", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	for _, a := range ev.Shards {
		role := "primary"
		if a.Hedged || a.Attempt > 1 {
			role = "hedge"
		}
		if a.Attempt == 0 {
			role = "rejected"
		}
		line := fmt.Sprintf("  shard %d %s %s", a.Shard, role, fmtDur(a.Duration))
		if a.Winner {
			line += " winner"
		}
		if a.Breaker != "" {
			line += " breaker=" + a.Breaker
		}
		if a.Deadline > 0 {
			line += " deadline=" + fmtDur(a.Deadline)
		}
		if a.Err != "" {
			line += " err=" + a.Err
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a duration rounded to microseconds for readability.
func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// intList renders a comma-separated int list.
func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
