package reqlog

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the retained events as JSON, newest first:
//
//	GET /debug/requests            every retained event
//	GET /debug/requests?reason=slow  only events retained as slow
//	GET /debug/requests?n=10       at most 10 events
//
// The body is a JSON array of Event — the same records a flight bundle
// freezes and `qatk requests` renders. A nil log answers 503 so probes
// can tell "disabled" from "broken".
func (l *Log) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if l == nil {
			http.Error(w, "request log disabled", http.StatusServiceUnavailable)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		events := l.Snapshot()
		if reason := r.URL.Query().Get("reason"); reason != "" {
			events = FilterByReason(events, reason)
		}
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(events) {
				events = events[:n]
			}
		}
		if events == nil {
			events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}

// FilterByReason keeps the events retained for the given reason.
func FilterByReason(events []Event, reason string) []Event {
	var out []Event
	for _, ev := range events {
		for _, r := range ev.Reasons {
			if r == reason {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}
