package reqlog

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a deterministic time source tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

// finish seals a synthetic event through a builder with the given shape.
func finish(l *Log, status int, d time.Duration, shape func(*Builder)) bool {
	b := l.Begin("GET", "/api/recommend")
	if shape != nil {
		shape(b)
	}
	return b.Finish(status, 42, d)
}

// TestTailSamplerRetention is the deterministic acceptance test: after
// the rolling window engages on a fast baseline, a slow request and a
// degraded request are retained while a fast 200 is not.
func TestTailSamplerRetention(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	l := New(Config{Capacity: 16, TailFactor: 1, MinCount: 64, Registry: reg, Clock: clk.now})

	// Warm the rolling window: 100 fast 200s. None may be retained —
	// the p99 threshold is exactly the fast bucket's bound (1ms), and
	// retention requires exceeding it.
	for i := 0; i < 100; i++ {
		if finish(l, 200, time.Millisecond, nil) {
			t.Fatalf("fast 200 #%d was retained", i)
		}
	}
	if got := l.Threshold(); got != time.Millisecond {
		t.Fatalf("threshold = %v, want 1ms", got)
	}

	if !finish(l, 200, 50*time.Millisecond, nil) {
		t.Fatal("slow request was not retained")
	}
	if !finish(l, 200, time.Millisecond, func(b *Builder) {
		b.Outcome(true, false, true, []int{2})
	}) {
		t.Fatal("degraded request was not retained")
	}
	if finish(l, 200, time.Millisecond, nil) {
		t.Fatal("fast 200 after warmup was retained")
	}

	events := l.Snapshot()
	if len(events) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(events))
	}
	// Newest first: the degraded event, then the slow one.
	if !reflect.DeepEqual(events[0].Reasons, []string{ReasonDegraded}) {
		t.Fatalf("degraded event reasons = %v", events[0].Reasons)
	}
	if !reflect.DeepEqual(events[0].FailedShards, []int{2}) {
		t.Fatalf("degraded event failed shards = %v", events[0].FailedShards)
	}
	if !reflect.DeepEqual(events[1].Reasons, []string{ReasonSlow}) {
		t.Fatalf("slow event reasons = %v", events[1].Reasons)
	}
	if events[1].Duration != 50*time.Millisecond {
		t.Fatalf("slow event duration = %v", events[1].Duration)
	}

	if got := reg.Counter(MetricReqObservedTotal).Value(); got != 103 {
		t.Fatalf("observed = %d, want 103", got)
	}
	if got := reg.Counter(MetricReqDroppedTotal).Value(); got != 101 {
		t.Fatalf("dropped = %d, want 101", got)
	}
	if got := reg.Counter(MetricReqRetainedTotal, obs.L("reason", ReasonSlow)).Value(); got != 1 {
		t.Fatalf("retained{slow} = %d, want 1", got)
	}
	if got := reg.Counter(MetricReqRetainedTotal, obs.L("reason", ReasonDegraded)).Value(); got != 1 {
		t.Fatalf("retained{degraded} = %d, want 1", got)
	}
}

// TestHardReasons covers the remaining retention rules: non-2xx status,
// hedging, panic, and breaker trips.
func TestHardReasons(t *testing.T) {
	l := New(Config{Capacity: 8})
	cases := []struct {
		name   string
		status int
		shape  func(*Builder)
		want   []string
	}{
		{"status", 500, nil, []string{ReasonStatus}},
		{"hedged", 200, func(b *Builder) { b.Outcome(false, true, false, nil) }, []string{ReasonHedged}},
		{"panic", 500, func(b *Builder) { b.SetPanic("boom") }, []string{ReasonStatus, ReasonPanic}},
		{"breaker", 200, func(b *Builder) { b.BreakerTrip(3) }, []string{ReasonBreaker}},
	}
	for _, tc := range cases {
		if !finish(l, tc.status, time.Millisecond, tc.shape) {
			t.Fatalf("%s: not retained", tc.name)
		}
		ev := l.Snapshot()[0]
		if !reflect.DeepEqual(ev.Reasons, tc.want) {
			t.Fatalf("%s: reasons = %v, want %v", tc.name, ev.Reasons, tc.want)
		}
	}
}

// TestEscapeHatches covers SampleAll and head sampling.
func TestEscapeHatches(t *testing.T) {
	all := New(Config{Capacity: 4, SampleAll: true})
	if !finish(all, 200, time.Millisecond, nil) {
		t.Fatal("SampleAll did not retain a fast 200")
	}
	if got := all.Snapshot()[0].Reasons; !reflect.DeepEqual(got, []string{ReasonAlways}) {
		t.Fatalf("reasons = %v", got)
	}

	head := New(Config{Capacity: 8, HeadEvery: 3})
	kept := 0
	for i := 0; i < 9; i++ {
		if finish(head, 200, time.Millisecond, nil) {
			kept++
		}
	}
	if kept != 3 {
		t.Fatalf("head sampling kept %d of 9, want 3", kept)
	}
}

// TestRingEviction proves the fixed-capacity ring keeps the newest
// events, newest first.
func TestRingEviction(t *testing.T) {
	l := New(Config{Capacity: 2, SampleAll: true})
	for i := 0; i < 3; i++ {
		finish(l, 200+i, time.Millisecond, nil)
	}
	events := l.Snapshot()
	if len(events) != 2 {
		t.Fatalf("ring holds %d, want 2", len(events))
	}
	if events[0].Status != 202 || events[1].Status != 201 {
		t.Fatalf("ring order = %d, %d; want 202, 201", events[0].Status, events[1].Status)
	}
}

// TestBuilderAssemblesWideEvent checks the full event shape: stage
// timings, shard attempts, winner marking, and trace ID formatting.
func TestBuilderAssemblesWideEvent(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{Capacity: 4, SampleAll: true, Clock: clk.now})
	b := l.Begin("GET", "/api/recommend")
	b.Query("P042", 3)

	sc := b.Clock()
	start := sc.Start()
	clk.advance(2 * time.Millisecond)
	start = sc.Lap(StageScore, start)
	clk.advance(time.Millisecond)
	sc.Lap(StageRank, start)

	b.Attempt(ShardAttempt{Shard: 1, Attempt: 1, Breaker: "closed", Deadline: 250 * time.Millisecond, Duration: 3 * time.Millisecond})
	b.Attempt(ShardAttempt{Shard: 1, Attempt: 2, Hedged: true, Breaker: "closed", Duration: time.Millisecond})
	b.MarkWinner(1, 2)
	b.Outcome(false, true, false, nil)

	if !b.Finish(200, 0xabc, 5*time.Millisecond) {
		t.Fatal("event not retained under SampleAll")
	}
	ev := l.Snapshot()[0]
	if ev.TraceID != "0000000000000abc" {
		t.Fatalf("trace id = %q", ev.TraceID)
	}
	if ev.Part != "P042" || ev.Features != 3 {
		t.Fatalf("query identity = %q/%d", ev.Part, ev.Features)
	}
	want := []StageTiming{
		{Name: "score", Duration: 2 * time.Millisecond},
		{Name: "rank", Duration: time.Millisecond},
	}
	if !reflect.DeepEqual(ev.Stages, want) {
		t.Fatalf("stages = %+v", ev.Stages)
	}
	if len(ev.Shards) != 2 || !ev.Shards[1].Winner || ev.Shards[0].Winner {
		t.Fatalf("shard attempts = %+v", ev.Shards)
	}
	if !ev.Hedged {
		t.Fatal("hedged flag lost")
	}
}

// TestHandlerRoundTrip serves events over HTTP and decodes them back,
// asserting the JSON form round-trips the full event.
func TestHandlerRoundTrip(t *testing.T) {
	l := New(Config{Capacity: 4, Clock: newFakeClock().now})
	finish(l, 503, 7*time.Millisecond, func(b *Builder) {
		b.Query("P001", 2)
		b.Attempt(ShardAttempt{Shard: 0, Attempt: 1, Duration: 6 * time.Millisecond, Err: "context deadline exceeded"})
		b.Outcome(true, true, true, []int{0})
	})
	finish(l, 200, time.Millisecond, func(b *Builder) {
		b.Outcome(false, true, false, nil)
	})

	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	var got []Event
	resp, err := srv.Client().Get(srv.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l.Snapshot()) {
		t.Fatalf("HTTP round-trip mismatch:\n got %+v\nwant %+v", got, l.Snapshot())
	}

	// ?reason= filters, ?n= caps.
	resp, err = srv.Client().Get(srv.URL + "/debug/requests?reason=degraded")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var degraded []Event
	if err := json.NewDecoder(resp.Body).Decode(&degraded); err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 1 || degraded[0].Status != 503 {
		t.Fatalf("reason filter returned %+v", degraded)
	}
	resp, err = srv.Client().Get(srv.URL + "/debug/requests?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var capped []Event
	if err := json.NewDecoder(resp.Body).Decode(&capped); err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 || capped[0].Status != 200 {
		t.Fatalf("n cap returned %+v", capped)
	}
}

// TestStageTotals aggregates across all finished events, retained or not.
func TestStageTotals(t *testing.T) {
	clk := newFakeClock()
	l := New(Config{Capacity: 4, Clock: clk.now})
	for i := 0; i < 3; i++ {
		b := l.Begin("GET", "/api/recommend")
		sc := b.Clock()
		start := sc.Start()
		clk.advance(time.Millisecond)
		sc.Lap(StageScore, start)
		b.Finish(200, 1, time.Millisecond) // fast 200: observed, dropped
	}
	totals := l.StageTotals()
	if len(totals) != 1 || totals[0].Name != "score" ||
		totals[0].Count != 3 || totals[0].Total != 3*time.Millisecond {
		t.Fatalf("stage totals = %+v", totals)
	}
}

// TestNilSafety drives the whole disabled surface: nil log, nil builder,
// nil clock, contexts without a builder.
func TestNilSafety(t *testing.T) {
	var l *Log
	b := l.Begin("GET", "/")
	if b != nil {
		t.Fatal("nil log handed out a builder")
	}
	b.Query("P", 1)
	b.Outcome(true, true, true, []int{1})
	b.Attempt(ShardAttempt{})
	b.MarkWinner(0, 1)
	b.SetPanic("x")
	b.BreakerTrip(0)
	if b.Finish(200, 1, time.Second) {
		t.Fatal("nil builder retained an event")
	}
	sc := b.Clock()
	if sc != nil {
		t.Fatal("nil builder handed out a clock")
	}
	start := sc.Start()
	sc.Lap(StageScore, start)
	if sc.Stage(StageScore) != 0 {
		t.Fatal("nil clock accumulated time")
	}
	if l.Snapshot() != nil || l.StageTotals() != nil || l.Threshold() != 0 {
		t.Fatal("nil log returned data")
	}

	ctx := context.Background()
	if From(ctx) != nil || ClockFrom(ctx) != nil {
		t.Fatal("bare context yielded a builder")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil builder) allocated a context node")
	}
}

// TestContextCarriage round-trips the builder through a context.
func TestContextCarriage(t *testing.T) {
	l := New(Config{Capacity: 4})
	b := l.Begin("GET", "/")
	ctx := NewContext(context.Background(), b)
	if From(ctx) != b {
		t.Fatal("builder lost in context")
	}
	if ClockFrom(ctx) != b.Clock() {
		t.Fatal("clock lost in context")
	}
}

// TestTraceIDString pins the fixed-width hex rendering.
func TestTraceIDString(t *testing.T) {
	for id, want := range map[uint64]string{
		0:              "0000000000000000",
		0x2a:           "000000000000002a",
		0xdeadbeef1234: "0000deadbeef1234",
	} {
		if got := TraceIDString(id); got != want {
			t.Fatalf("TraceIDString(%#x) = %q, want %q", id, got, want)
		}
	}
}

// TestWindowDecay proves the rolling window halves instead of growing
// without bound, keeping the threshold responsive to the recent past.
func TestWindowDecay(t *testing.T) {
	l := New(Config{Capacity: 4, MinCount: 10, TailFactor: 1})
	for i := 0; i < decayEvery+10; i++ {
		finish(l, 200, time.Millisecond, nil)
	}
	l.mu.Lock()
	total := l.latTotal
	l.mu.Unlock()
	if total >= decayEvery {
		t.Fatalf("window total %d did not decay below %d", total, decayEvery)
	}
	if got := l.Threshold(); got != time.Millisecond {
		t.Fatalf("threshold after decay = %v, want 1ms", got)
	}
}
