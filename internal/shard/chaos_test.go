package shard

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
)

// The deterministic chaos matrix (acceptance criteria): for each of
// {slow, erroring, wedged} × {owning, non-owning}, the router returns
// within the request deadline, marks the response degraded when results
// are partial, trips and recovers the breaker, and a hedged query returns
// the fast attempt's answer with the slow attempt cancelled. Faults are
// assigned (not drawn) through internal/faults' shard modes, so every
// path is asserted, not sampled.

// switchHook is a FaultHook whose inner hook can be swapped at runtime —
// the chaos tests heal a shard to drive breaker recovery.
type switchHook struct {
	mu sync.Mutex
	fn func(ctx context.Context, shard, attempt int) error
}

func (s *switchHook) set(fn func(ctx context.Context, shard, attempt int) error) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

func (s *switchHook) hook(ctx context.Context, shardID, attempt int) error {
	s.mu.Lock()
	fn := s.fn
	s.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(ctx, shardID, attempt)
}

// fakeClock is a mutex-guarded manual clock for breaker cooldowns.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// chaosEnv is one chaos-matrix fixture: a 4-shard router over a seeded
// knowledge base with a swappable fault hook, fake breaker clock, metric
// registry and flight recorder.
type chaosEnv struct {
	src      *kb.Memory
	router   *Router
	hook     *switchHook
	clock    *fakeClock
	reg      *obs.Registry
	recorder *flight.Recorder
	// reqLog retains every chaos query's wide event; when a chaos test
	// fails and CHAOS_ARTIFACT names a path, the ring is dumped there as
	// JSON so the failed run's per-shard attempt record survives CI.
	reqLog *reqlog.Log
	seq    atomic.Uint64
	// ownedPart is a part the knowledge base knows; owner is its shard.
	// unknownPart is owned by no shard (scatter); scatterVictim is a
	// non-owning shard in that scatter.
	ownedPart     string
	owner         int
	unknownPart   string
	scatterVictim int
}

func newChaosEnv(t *testing.T, mut func(*Config)) *chaosEnv {
	t.Helper()
	e := &chaosEnv{
		src:   buildKB(7, 20, 15, 400),
		hook:  &switchHook{},
		clock: &fakeClock{now: time.Unix(1_700_000_000, 0)},
		reg:   obs.NewRegistry(),
	}
	e.recorder = flight.New(flight.Config{
		Dir:         t.TempDir(),
		Registry:    e.reg,
		MinInterval: -1, // every trigger fires; tests assert exact counts
	})
	t.Cleanup(e.recorder.Close)
	e.reqLog = reqlog.New(reqlog.Config{SampleAll: true})
	t.Cleanup(func() {
		path := os.Getenv("CHAOS_ARTIFACT")
		if path == "" || !t.Failed() {
			return
		}
		// The dump is a single-file flight bundle so the standard reader
		// renders it: `qatk requests <path>`.
		dump := flight.Bundle{
			Schema:   flight.BundleSchema,
			Reason:   "chaos-test-failure",
			Time:     time.Now(),
			Requests: e.reqLog.Snapshot(),
		}
		data, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			t.Logf("chaos artifact: marshal ring: %v", err)
			return
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("chaos artifact: write %s: %v", path, err)
			return
		}
		t.Logf("chaos artifact: tail-sample ring written to %s", path)
	})
	cfg := Config{
		Stores:          PartitionStores(e.src, 4),
		ShardTimeout:    30 * time.Millisecond,
		HedgeAfter:      3 * time.Millisecond,
		BreakerBudget:   2,
		BreakerCooldown: time.Second,
		Hook:            e.hook.hook,
		Metrics:         e.reg,
		Flight:          e.recorder,
		Clock:           e.clock.Now,
	}
	if mut != nil {
		mut(&cfg)
	}
	var err error
	e.router, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.router.Close)

	e.ownedPart = "P003"
	if !e.src.KnownPart(e.ownedPart) {
		t.Fatalf("fixture part %s not in knowledge base", e.ownedPart)
	}
	e.owner = kb.PartOwner(e.ownedPart, 4)
	e.unknownPart = "PX99"
	if e.src.KnownPart(e.unknownPart) {
		t.Fatalf("fixture part %s unexpectedly known", e.unknownPart)
	}
	e.scatterVictim = (kb.PartOwner(e.unknownPart, 4) + 1) % 4
	return e
}

// query runs one router query under a generous request budget and asserts
// it returns within that deadline.
func (e *chaosEnv) query(t *testing.T, part string) (*Result, error) {
	t.Helper()
	budget := 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	// Every chaos query assembles a wide event so a failed matrix run can
	// ship its per-shard attempt record as the CHAOS_ARTIFACT ring dump.
	b := e.reqLog.Begin("CHAOS", t.Name())
	b.Query(part, 4)
	ctx = reqlog.NewContext(ctx, b)
	start := time.Now()
	res, err := e.router.Query(ctx, part, []string{"f01", "f07", "f21", "f33"})
	elapsed := time.Since(start)
	status := 200
	if err != nil {
		status = 503
	}
	if res != nil {
		b.Outcome(res.Degraded, res.Hedged, res.Scatter, res.FailedShards)
	}
	b.Finish(status, e.seq.Add(1), elapsed)
	if elapsed >= budget {
		t.Fatalf("query overran the request deadline: %v >= %v", elapsed, budget)
	}
	return res, err
}

func (e *chaosEnv) bundles(reason string) uint64 {
	return e.reg.Counter(flight.MetricFlightBundlesTotal, obs.L("reason", reason)).Value()
}

// TestChaosSlowShard: a slow primary attempt is rescued by the hedge — the
// response is the fast attempt's answer, bit-identical to the healthy
// ranking, not degraded — for both the owning shard of a known part and a
// non-owning shard in a scatter.
func TestChaosSlowShard(t *testing.T) {
	single := func(src kb.Store, part string) []core.ScoredCode {
		return core.New(src, core.Jaccard{}).Recommend(part, []string{"f01", "f07", "f21", "f33"})
	}
	t.Run("owning", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		// Slow only the first attempt: the hedge goes to another worker
		// ("replica") that answers immediately.
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.owner: {Mode: faults.ShardSlow, Delay: 200 * time.Millisecond, FirstAttempts: 1},
		}))
		res, err := e.query(t, e.ownedPart)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || !res.Hedged {
			t.Fatalf("degraded=%v hedged=%v, want false/true", res.Degraded, res.Hedged)
		}
		if want := single(e.src, e.ownedPart); !reflect.DeepEqual(res.Codes, want) {
			t.Errorf("hedged answer diverged from healthy ranking:\n got %v\nwant %v", res.Codes, want)
		}
		if wins := e.reg.Counter(MetricShardHedgeWinsTotal, obs.L("shard", strconv.Itoa(e.owner))).Value(); wins != 1 {
			t.Errorf("hedge wins = %d, want 1", wins)
		}
	})
	t.Run("non-owning", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.scatterVictim: {Mode: faults.ShardSlow, Delay: 200 * time.Millisecond, FirstAttempts: 1},
		}))
		res, err := e.query(t, e.unknownPart)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || !res.Scatter || !res.Hedged {
			t.Fatalf("degraded=%v scatter=%v hedged=%v, want false/true/true",
				res.Degraded, res.Scatter, res.Hedged)
		}
		if want := single(e.src, e.unknownPart); !reflect.DeepEqual(res.Codes, want) {
			t.Errorf("hedged scatter diverged from healthy ranking:\n got %v\nwant %v", res.Codes, want)
		}
	})
}

// TestChaosErrorShard: an erroring shard degrades the response (partial
// results from the survivors), trips its breaker after the budget, and
// recovers through a half-open probe once healed.
func TestChaosErrorShard(t *testing.T) {
	t.Run("non-owning", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.scatterVictim: {Mode: faults.ShardError},
		}))
		res, err := e.query(t, e.unknownPart)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || !res.Scatter {
			t.Fatalf("degraded=%v scatter=%v, want true/true", res.Degraded, res.Scatter)
		}
		if !reflect.DeepEqual(res.FailedShards, []int{e.scatterVictim}) {
			t.Errorf("failed shards = %v, want [%d]", res.FailedShards, e.scatterVictim)
		}
		if len(res.Codes) == 0 {
			t.Error("no codes from surviving shards")
		}
	})
	t.Run("owning-trip-and-recover", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.owner: {Mode: faults.ShardError},
		}))
		// Budget is 2 consecutive sub-query failures; each query fails the
		// owner once (hedge retry errors too = one sub-query failure).
		for i := 0; i < 2; i++ {
			res, err := e.query(t, e.ownedPart)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if !res.Degraded || !res.Scatter {
				t.Fatalf("query %d: degraded=%v scatter=%v, want true/true", i, res.Degraded, res.Scatter)
			}
			if !reflect.DeepEqual(res.FailedShards, []int{e.owner}) {
				t.Fatalf("query %d: failed shards = %v, want [%d]", i, res.FailedShards, e.owner)
			}
		}
		if st := e.router.Health()[e.owner].State; st != StateOpen {
			t.Fatalf("breaker state after budget = %s, want %s", st, StateOpen)
		}
		if !e.router.Degraded() {
			t.Error("router not degraded with an open breaker")
		}
		if n := e.bundles(flight.ReasonCircuitBreaker); n != 1 {
			t.Errorf("circuit-breaker flight bundles = %d, want 1", n)
		}
		if opens := e.reg.Counter(MetricShardBreakerOpensTotal, obs.L("shard", strconv.Itoa(e.owner))).Value(); opens != 1 {
			t.Errorf("breaker opens = %d, want 1", opens)
		}
		// While open the owner is skipped outright: still degraded, fast.
		res, err := e.query(t, e.ownedPart)
		if err != nil || !res.Degraded {
			t.Fatalf("open-breaker query: res=%+v err=%v", res, err)
		}
		// Heal the shard, let the cooldown elapse: the half-open probe
		// succeeds, the breaker closes, and responses are exact again.
		e.hook.set(nil)
		e.clock.Advance(2 * time.Second)
		res, err = e.query(t, e.ownedPart)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || res.Scatter {
			t.Fatalf("recovered query: degraded=%v scatter=%v, want false/false", res.Degraded, res.Scatter)
		}
		if st := e.router.Health()[e.owner].State; st != StateClosed {
			t.Errorf("breaker state after recovery = %s, want %s", st, StateClosed)
		}
		want := core.New(e.src, core.Jaccard{}).Recommend(e.ownedPart, []string{"f01", "f07", "f21", "f33"})
		if !reflect.DeepEqual(res.Codes, want) {
			t.Errorf("recovered ranking diverged:\n got %v\nwant %v", res.Codes, want)
		}
	})
}

// TestChaosWedgedShard: a wedged shard burns its per-shard deadline, the
// router still answers within the request budget from the survivors, the
// response is degraded, and the shard-stall hard trigger fires once
// (latched) until a success re-arms it.
func TestChaosWedgedShard(t *testing.T) {
	t.Run("owning", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.owner: {Mode: faults.ShardWedge},
		}))
		res, err := e.query(t, e.ownedPart)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || !res.Scatter {
			t.Fatalf("degraded=%v scatter=%v, want true/true", res.Degraded, res.Scatter)
		}
		if !reflect.DeepEqual(res.FailedShards, []int{e.owner}) {
			t.Errorf("failed shards = %v, want [%d]", res.FailedShards, e.owner)
		}
		if n := e.bundles(flight.ReasonShardStall); n != 1 {
			t.Errorf("shard-stall flight bundles = %d, want 1", n)
		}
		// The stall trigger is latched: a second wedged query does not
		// fire another bundle.
		if _, err := e.query(t, e.ownedPart); err != nil {
			t.Fatal(err)
		}
		if n := e.bundles(flight.ReasonShardStall); n != 1 {
			t.Errorf("shard-stall flight bundles after second wedge = %d, want 1 (latched)", n)
		}
	})
	t.Run("non-owning", func(t *testing.T) {
		e := newChaosEnv(t, nil)
		e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
			e.scatterVictim: {Mode: faults.ShardWedge},
		}))
		res, err := e.query(t, e.unknownPart)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || !res.Scatter {
			t.Fatalf("degraded=%v scatter=%v, want true/true", res.Degraded, res.Scatter)
		}
		if !reflect.DeepEqual(res.FailedShards, []int{e.scatterVictim}) {
			t.Errorf("failed shards = %v, want [%d]", res.FailedShards, e.scatterVictim)
		}
	})
}

// TestChaosAllShardsFailed: when every shard is broken the router reports
// the one error it reserves for a query nobody answered.
func TestChaosAllShardsFailed(t *testing.T) {
	e := newChaosEnv(t, nil)
	e.hook.set(faults.ShardHook(map[int]faults.ShardFault{
		0: {Mode: faults.ShardError}, 1: {Mode: faults.ShardError},
		2: {Mode: faults.ShardError}, 3: {Mode: faults.ShardError},
	}))
	_, err := e.query(t, e.unknownPart)
	if !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("err = %v, want ErrAllShardsFailed", err)
	}
}
