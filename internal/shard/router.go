package shard

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
)

// Defaults for zero Config fields. DefaultHedgeAfter is NOT applied to a
// zero Config.HedgeAfter (zero disables hedging); it is the default
// questd serves with (-hedge-after).
const (
	DefaultShardTimeout    = 250 * time.Millisecond
	DefaultHedgeAfter      = 20 * time.Millisecond
	DefaultWorkersPerShard = 2
	DefaultBreakerBudget   = 5
	DefaultBreakerCooldown = time.Second
)

// ErrShardBroken reports a sub-query rejected by an open circuit breaker.
var ErrShardBroken = errors.New("shard: breaker open")

// ErrAllShardsFailed reports a query no shard could answer.
var ErrAllShardsFailed = errors.New("shard: all shards failed")

// Config wires a Router.
type Config struct {
	// Stores holds one partition per shard (kb.Subset produces them); its
	// length is the shard count.
	Stores []kb.Store
	// Sim is the similarity measure (default core.Jaccard{}); NodeCutoff
	// caps best-scored nodes per shard (0 = core.DefaultNodeCutoff).
	Sim        core.Similarity
	NodeCutoff int
	// WorkersPerShard sizes each shard's serving pool (default 2): the
	// second worker is what lets a hedged attempt overtake a wedged one.
	WorkersPerShard int
	// ShardTimeout bounds each attempt; the effective per-attempt deadline
	// is the smaller of ShardTimeout and the request context's remaining
	// budget (default 250ms).
	ShardTimeout time.Duration
	// HedgeAfter issues a second attempt when the primary has not answered
	// after this delay (first-response-wins, loser cancelled via context).
	// A fast-failing primary is retried immediately. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerBudget and BreakerCooldown configure the per-shard breakers
	// (consecutive failures to trip; cooldown before a half-open probe).
	BreakerBudget   int
	BreakerCooldown time.Duration
	// Hook injects deterministic chaos into every attempt (see FaultHook);
	// nil means healthy shards. Replica attempts do not run the hook —
	// replication-path faults are injected at the Link instead
	// (faults.FaultyLink).
	Hook FaultHook
	// Replicas are WAL-shipped read replicas (internal/repl) serving the
	// full knowledge base; the router carves each shard's live slice out of
	// them and uses them as hedge and failover targets.
	Replicas []ReplicaTarget
	// MaxApplyLag bounds replica staleness (default DefaultMaxApplyLag):
	// within it a replica is "fresh" and hedge-eligible; beyond it the
	// replica only serves rescues, with the response flagged stale.
	MaxApplyLag time.Duration
	// Observability, all nil-safe: quest_shard_* metrics, one span per
	// query plus one per attempt, structured failure events, and flight
	// hard triggers on breaker trips and shard stalls.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Logger  *obs.Logger
	Flight  *flight.Recorder
	// Clock is the breakers' time source (default time.Now); tests drive
	// cooldown recovery deterministically through it.
	Clock func() time.Time
}

// handle is one shard with its robustness wrapping.
type handle struct {
	worker  *worker
	breaker *Breaker
	nodes   int
	// replicas are this shard's serving wrappers over the configured
	// replica targets, consulted for hedged attempts (fresh only) and
	// last-resort rescues (stale allowed, flagged).
	replicas []*replicaHandle

	requests     *obs.Counter
	failures     *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	breakerOpens *obs.Counter
	replicaReads *obs.Counter

	// stallLatched keeps the flight stall trigger to the transition into
	// the stalled state (deadline expiry on every attempt) rather than
	// firing per query; any success re-arms it.
	stallLatched atomic.Bool
}

// Router fans queries out over the shard set.
type Router struct {
	cfg    Config
	shards []*handle

	duration *obs.Histogram
	inflight *obs.Gauge
	degraded *obs.Counter
	stale    *obs.Counter
}

// Result is one answered query, carrying the degradation contract: Codes
// always ranks deterministically over whatever shards answered, and
// Degraded marks the set as partial (mirrored into the API envelope and
// /readyz).
type Result struct {
	Codes []core.ScoredCode
	// Degraded reports partial results: at least one shard failed or was
	// skipped by its breaker and the answer was served from the survivors.
	Degraded bool
	// FailedShards lists the shards (ascending) that did not contribute.
	FailedShards []int
	// Scatter reports the all-shards fallback path (part owned by no
	// shard, or the owner unavailable).
	Scatter bool
	// Hedged reports that at least one hedged second attempt was issued.
	Hedged bool
	// Replica reports that at least one sub-answer was served by a read
	// replica (hedge win or rescue) rather than a primary shard.
	Replica bool
	// Stale reports that a contributing replica was beyond the router's
	// MaxApplyLag bound when it answered: the result is a consistent but
	// possibly outdated prefix of the knowledge base (mirrored into the
	// API envelope as stale: true).
	Stale bool
}

// ShardHealth is one shard's health view, served by /readyz.
type ShardHealth struct {
	ID        int    `json:"id"`
	State     string `json:"state"` // breaker state: closed | open | half-open
	Nodes     int    `json:"nodes"`
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	LastError string `json:"last_error,omitempty"`
}

// New builds and starts a router over cfg.Stores. Callers must Close it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Stores) == 0 {
		return nil, fmt.Errorf("shard: no stores")
	}
	if cfg.Sim == nil {
		cfg.Sim = core.Jaccard{}
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = DefaultWorkersPerShard
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	if cfg.MaxApplyLag <= 0 {
		cfg.MaxApplyLag = DefaultMaxApplyLag
	}
	r := &Router{
		cfg:      cfg,
		duration: cfg.Metrics.Histogram(MetricShardQueryDurationSeconds, obs.DefBuckets),
		inflight: cfg.Metrics.Gauge(MetricShardQueriesInflight),
		degraded: cfg.Metrics.Counter(MetricShardDegradedTotal),
		stale:    cfg.Metrics.Counter(MetricShardStaleTotal),
	}
	n := len(cfg.Stores)
	for i, store := range cfg.Stores {
		label := obs.L("shard", strconv.Itoa(i))
		h := &handle{
			worker:       newWorker(i, store, cfg.Sim, cfg.NodeCutoff, cfg.WorkersPerShard, cfg.Hook),
			breaker:      NewBreaker(cfg.BreakerBudget, cfg.BreakerCooldown, cfg.Clock),
			nodes:        store.NodeCount(),
			requests:     cfg.Metrics.Counter(MetricShardRequestsTotal, label),
			failures:     cfg.Metrics.Counter(MetricShardFailuresTotal, label),
			hedges:       cfg.Metrics.Counter(MetricShardHedgesTotal, label),
			hedgeWins:    cfg.Metrics.Counter(MetricShardHedgeWinsTotal, label),
			breakerOpens: cfg.Metrics.Counter(MetricShardBreakerOpensTotal, label),
			replicaReads: cfg.Metrics.Counter(MetricShardReplicaReadsTotal, label),
		}
		for _, t := range cfg.Replicas {
			// One single-goroutine worker per shard x replica, over the
			// shard's live slice of the replicated KB. No fault hook: chaos
			// on the replication path is injected at the Link.
			rw := newWorker(i, &replicaStore{t: t, shard: i, n: n}, cfg.Sim, cfg.NodeCutoff, 1, nil)
			rw.replica = true
			h.replicas = append(h.replicas, &replicaHandle{t: t, w: rw})
		}
		r.shards = append(r.shards, h)
	}
	return r, nil
}

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Close stops every shard's worker pool, replica workers included (the
// replicas themselves — the apply loops — belong to their owner).
func (r *Router) Close() {
	for _, h := range r.shards {
		h.worker.close()
		for _, rh := range h.replicas {
			rh.w.close()
		}
	}
}

// Health reports every shard's breaker state and counters.
func (r *Router) Health() []ShardHealth {
	out := make([]ShardHealth, len(r.shards))
	for i, h := range r.shards {
		sh := ShardHealth{
			ID:       i,
			State:    h.breaker.State(),
			Nodes:    h.nodes,
			Requests: h.requests.Value(),
			Failures: h.failures.Value(),
		}
		if err := h.breaker.LastError(); err != nil {
			sh.LastError = err.Error()
		}
		out[i] = sh
	}
	return out
}

// Degraded reports whether any shard's breaker is currently not closed —
// the router-level bit /readyz folds into its status.
func (r *Router) Degraded() bool {
	for _, h := range r.shards {
		if h.breaker.State() != StateClosed {
			return true
		}
	}
	return false
}

// Query answers one recommendation query. The owning shard (kb.PartOwner)
// is consulted first; a part no shard owns scatters to every shard and
// merges, reproducing the paper's all-nodes fallback bit-identically. An
// unavailable owner degrades to a scatter over the survivors; failing
// non-owning shards in a scatter are skipped and the response is marked
// Degraded. The error return is reserved for a query *no* shard answered.
func (r *Router) Query(ctx context.Context, partID string, features []string) (*Result, error) {
	start := time.Now()
	r.inflight.Add(1)
	span := r.cfg.Tracer.Start(nil, spanShardQuery, obs.L("part", partID))
	res := &Result{}
	var qerr error
	defer func() {
		r.inflight.Add(-1)
		r.duration.Observe(time.Since(start).Seconds())
		span.SetAttr("scatter", strconv.FormatBool(res.Scatter))
		span.SetAttr("degraded", strconv.FormatBool(res.Degraded))
		span.End(qerr)
	}()

	sc := reqlog.ClockFrom(ctx)
	owner := kb.PartOwner(partID, len(r.shards))
	out, hedged, err := r.queryShard(ctx, span, owner, partID, features, false)
	res.Hedged = res.Hedged || hedged
	if err == nil && out.known {
		res.Replica, res.Stale = out.replica, out.stale
		if res.Stale {
			r.stale.Inc()
		}
		t := sc.Start()
		res.Codes = core.CodesFromNodes(out.nodes)
		sc.Lap(reqlog.StageDedup, t)
		return res, nil
	}
	skip := -1
	if err != nil {
		// The owner is unavailable: serve what the surviving shards can
		// rank rather than failing the query outright.
		res.Degraded = true
		res.FailedShards = append(res.FailedShards, owner)
		skip = owner
	}

	res.Scatter = true
	type scatterOut struct {
		idx    int
		out    response
		hedged bool
		err    error
	}
	ch := make(chan scatterOut, len(r.shards))
	dispatched := 0
	for i := range r.shards {
		if i == skip {
			continue
		}
		dispatched++
		go func(i int) {
			o, hg, e := r.queryShard(ctx, span, i, partID, features, true)
			ch <- scatterOut{idx: i, out: o, hedged: hg, err: e}
		}(i)
	}
	lists := make([][]core.ScoredNode, 0, dispatched)
	for j := 0; j < dispatched; j++ {
		so := <-ch
		res.Hedged = res.Hedged || so.hedged
		if so.err != nil {
			res.Degraded = true
			res.FailedShards = append(res.FailedShards, so.idx)
			continue
		}
		res.Replica = res.Replica || so.out.replica
		res.Stale = res.Stale || so.out.stale
		lists = append(lists, so.out.nodes)
	}
	sort.Ints(res.FailedShards)
	if len(lists) == 0 {
		qerr = fmt.Errorf("%w: part %q", ErrAllShardsFailed, partID)
		return nil, qerr
	}
	cutoff := r.cfg.NodeCutoff
	if cutoff <= 0 {
		cutoff = core.DefaultNodeCutoff
	}
	t := sc.Start()
	merged := mergeNodes(lists, cutoff)
	t = sc.Lap(reqlog.StageMerge, t)
	res.Codes = core.CodesFromNodes(merged)
	sc.Lap(reqlog.StageDedup, t)
	if res.Stale {
		r.stale.Inc()
	}
	if res.Degraded {
		r.degraded.Inc()
		r.cfg.Logger.Warn("degraded shard response",
			obs.L("part", partID),
			obs.L("failed_shards", fmt.Sprint(res.FailedShards)))
	}
	return res, nil
}

// mergeNodes merges per-shard ranked lists into one ranking under the
// classifier's total order — score descending, then error code, then node
// ID (globally unique, preserved by kb.Subset) — and applies the node
// cutoff. Every input list is already cut to the same cutoff and sorted
// under the same order, so the merge is deterministic and identical to
// ranking the union store. The comparator is a total order (node IDs are
// globally unique), so the unstable generic sort preserves the
// bit-identical ranking sort.Slice produced.
//
//qatk:hotpath
func mergeNodes(lists [][]core.ScoredNode, cutoff int) []core.ScoredNode {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	//qatk:allowalloc the merged ranking is the function's product, bounded by shards x cutoff
	merged := make([]core.ScoredNode, 0, total)
	for _, l := range lists {
		merged = append(merged, l...)
	}
	slices.SortFunc(merged, func(a, b core.ScoredNode) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		if a.Code != b.Code {
			return cmp.Compare(a.Code, b.Code)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	if len(merged) > cutoff {
		merged = merged[:cutoff]
	}
	return merged
}

// attemptOut is one attempt's outcome inside queryShard.
type attemptOut struct {
	attempt int
	out     response
	err     error
}

// queryShard runs one robust sub-query against shard idx: breaker
// admission, a per-attempt deadline derived from the request budget, and
// a hedged second attempt after HedgeAfter (first-response-wins, the
// loser cancelled via its attempt context). A fresh replica — ready and
// within MaxApplyLag — is preferred as the hedge target; and when the
// shard fails outright (breaker open, or every attempt burned), the best
// available replica serves a last-resort rescue, flagged stale when it
// lags beyond the bound. The breaker records one outcome per sub-query,
// not per attempt, and a rescue never resets it: the primary is still
// broken. The bool reports whether a hedged attempt was issued.
func (r *Router) queryShard(ctx context.Context, parent *obs.Span, idx int, partID string, features []string, scatter bool) (response, bool, error) {
	h := r.shards[idx]
	h.requests.Inc()
	// The wide-event builder rides the request context; everything it needs
	// beyond the attempt outcome itself (breaker state at admission, the
	// effective deadline) is computed only when request logging is on.
	rb := reqlog.From(ctx)
	var bstate string
	if rb != nil {
		bstate = h.breaker.State()
	}
	if !h.breaker.Allow() {
		h.failures.Inc()
		rb.Attempt(reqlog.ShardAttempt{Shard: idx, Breaker: bstate, Err: ErrShardBroken.Error()})
		if out, ok := r.rescue(ctx, parent, h, idx, partID, features, scatter, bstate); ok {
			return out, false, nil
		}
		return response{}, false, fmt.Errorf("%w: shard %d", ErrShardBroken, idx)
	}

	outc := make(chan attemptOut, 2)
	cancels := make([]context.CancelFunc, 0, 2)
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	launch := func(attempt int, w *worker, replicaID string) {
		actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
		cancels = append(cancels, cancel)
		spanLabels := []obs.Label{
			obs.L("shard", strconv.Itoa(idx)),
			obs.L("attempt", strconv.Itoa(attempt)),
		}
		if replicaID != "" {
			spanLabels = append(spanLabels, obs.L("replica", replicaID))
		}
		span := r.cfg.Tracer.Start(parent, spanShardAttempt, spanLabels...)
		var astart time.Time
		var deadline time.Duration
		if rb != nil {
			astart = time.Now()
			deadline = r.cfg.ShardTimeout
			if d, ok := ctx.Deadline(); ok {
				if rem := time.Until(d); rem < deadline {
					deadline = rem
				}
			}
		}
		go func() {
			out, err := w.query(actx, partID, features, scatter, attempt)
			if err == nil && replicaID != "" {
				out.replica = true
			}
			span.End(err)
			// Record the attempt before handing the outcome to the select
			// loop, so a winning attempt is already in the event when the
			// loop marks it. A cancelled loser records its cancellation; a
			// loser drained after Finish is harmlessly dropped.
			if rb != nil {
				a := reqlog.ShardAttempt{
					Shard: idx, Attempt: attempt, Hedged: attempt > 1, Replica: replicaID,
					Breaker: bstate, Deadline: deadline, Duration: time.Since(astart),
				}
				if err != nil {
					a.Err = err.Error()
				}
				rb.Attempt(a)
			}
			outc <- attemptOut{attempt: attempt, out: out, err: err}
		}()
	}
	launch(1, h.worker, "")

	var hedgeC <-chan time.Time
	if r.cfg.HedgeAfter > 0 {
		t := time.NewTimer(r.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	pending := 1
	hedged := false
	hedge := func() {
		hedgeC = nil
		hedged = true
		h.hedges.Inc()
		// A fresh replica beats the shard's own second worker as the hedge
		// target: it cannot be wedged on the same state the primary attempt
		// is stuck on. Staleness beyond the bound disqualifies — hedges
		// must not quietly trade latency for freshness.
		if rh, _ := r.pickReplica(h, true); rh != nil {
			h.replicaReads.Inc()
			launch(2, rh.w, rh.t.ID())
		} else {
			launch(2, h.worker, "")
		}
		pending++
	}
	for {
		select {
		case <-hedgeC:
			hedge()
		case ao := <-outc:
			pending--
			if ao.err == nil {
				// First response wins: cancel the loser (its context) and
				// let its goroutine drain into the buffered channel.
				for _, cancel := range cancels {
					cancel()
				}
				if ao.attempt == 2 {
					h.hedgeWins.Inc()
				}
				rb.MarkWinner(idx, ao.attempt)
				h.breaker.Success()
				h.stallLatched.Store(false)
				return ao.out, hedged, nil
			}
			if pending > 0 {
				continue // the other attempt may still win
			}
			if !hedged && r.cfg.HedgeAfter > 0 && ctx.Err() == nil {
				// The primary failed before the hedge delay elapsed:
				// spend the hedge as an immediate retry.
				hedge()
				continue
			}
			ferr := r.shardFailed(ctx, h, idx, ao.err)
			if out, ok := r.rescue(ctx, parent, h, idx, partID, features, scatter, bstate); ok {
				return out, hedged, nil
			}
			return response{}, hedged, ferr
		case <-ctx.Done():
			// The request budget expired; attempt contexts are children
			// of ctx, so the workers unwind on their own — and there is no
			// budget left to spend on a rescue.
			return response{}, hedged, r.shardFailed(ctx, h, idx, ctx.Err())
		}
	}
}

// rescue is the last line of the degradation ladder: after the shard
// itself failed (or its breaker rejected the sub-query), serve from the
// best available replica — ready, smallest apply lag, stale allowed. A
// stale rescue is flagged on the response (stale: true in the envelope)
// rather than refused: a consistent-but-outdated answer beats no answer,
// and never diverges (the replica holds an exact prefix of the primary's
// history). Rescue success deliberately leaves the breaker and the stall
// latch untouched — the primary shard is still broken.
func (r *Router) rescue(ctx context.Context, parent *obs.Span, h *handle, idx int, partID string, features []string, scatter bool, bstate string) (response, bool) {
	if ctx.Err() != nil {
		return response{}, false
	}
	rh, lag := r.pickReplica(h, false)
	if rh == nil {
		return response{}, false
	}
	const attempt = 3 // after the primary (1) and the hedge (2)
	h.replicaReads.Inc()
	actx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	span := r.cfg.Tracer.Start(parent, spanShardAttempt,
		obs.L("shard", strconv.Itoa(idx)),
		obs.L("attempt", strconv.Itoa(attempt)),
		obs.L("replica", rh.t.ID()))
	rb := reqlog.From(ctx)
	var astart time.Time
	if rb != nil {
		astart = time.Now()
	}
	out, err := rh.w.query(actx, partID, features, scatter, attempt)
	span.End(err)
	if rb != nil {
		a := reqlog.ShardAttempt{
			Shard: idx, Attempt: attempt, Replica: rh.t.ID(),
			Breaker: bstate, Deadline: r.cfg.ShardTimeout, Duration: time.Since(astart),
		}
		if err != nil {
			a.Err = err.Error()
		}
		rb.Attempt(a)
	}
	if err != nil {
		r.cfg.Logger.Warn("replica rescue failed",
			obs.L("shard", strconv.Itoa(idx)),
			obs.L("replica", rh.t.ID()),
			obs.L("err", err.Error()))
		return response{}, false
	}
	out.replica = true
	out.stale = lag > r.cfg.MaxApplyLag
	rb.MarkWinner(idx, attempt)
	r.cfg.Logger.Warn("sub-query rescued by replica",
		obs.L("shard", strconv.Itoa(idx)),
		obs.L("replica", rh.t.ID()),
		obs.L("stale", strconv.FormatBool(out.stale)))
	return out, true
}

// shardFailed accounts one sub-query failure: counters, breaker, the
// stall hard trigger on deadline expiry, and the breaker-trip hard
// trigger, both latched to state transitions.
func (r *Router) shardFailed(ctx context.Context, h *handle, idx int, err error) error {
	h.failures.Inc()
	shardLabel := obs.L("shard", strconv.Itoa(h.worker.id))
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		// Every attempt burned its per-shard deadline while the request
		// budget was still live: the shard is wedged, not the client.
		if !h.stallLatched.Swap(true) {
			r.cfg.Flight.Trigger(flight.ReasonShardStall,
				shardLabel,
				obs.L("timeout", r.cfg.ShardTimeout.String()))
		}
	}
	r.cfg.Logger.Warn("shard sub-query failed", shardLabel, obs.L("err", err.Error()))
	if tripped := h.breaker.Failure(err); tripped {
		h.breakerOpens.Inc()
		reqlog.From(ctx).BreakerTrip(h.worker.id)
		r.cfg.Logger.Error("shard circuit breaker tripped",
			shardLabel, obs.L("err", err.Error()))
		r.cfg.Flight.Trigger(flight.ReasonCircuitBreaker,
			shardLabel,
			obs.L("tier", "shard-router"),
			obs.L("err", err.Error()))
	}
	return fmt.Errorf("shard %d: %w", idx, err)
}
