package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs"
)

// fakeReplica is a canned ReplicaTarget serving the full KB with a fixed
// apply lag.
type fakeReplica struct {
	id    string
	ready bool
	lag   time.Duration
	gen   uint64
	store kb.Store
}

func (f *fakeReplica) ID() string              { return f.id }
func (f *fakeReplica) Ready() bool             { return f.ready }
func (f *fakeReplica) ApplyLag() time.Duration { return f.lag }
func (f *fakeReplica) Generation() uint64      { return f.gen }
func (f *fakeReplica) Store() kb.Store {
	if !f.ready {
		return nil
	}
	return f.store
}

// wedgePrimaries blocks every attempt-1 sub-query until its attempt
// context expires; hedges (and hookless replica workers) proceed.
func wedgePrimaries(ctx context.Context, shard, attempt int) error {
	if attempt == 1 {
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// failAll fails every primary-shard attempt immediately (the latched-
// primary model: the shard answers, instantly, with an error).
func failAll(ctx context.Context, shard, attempt int) error {
	return errors.New("primary latched")
}

func TestHedgePrefersFreshReplicaOverStale(t *testing.T) {
	src := buildKB(21, 12, 8, 200)
	stale := &fakeReplica{id: "r-stale", ready: true, lag: 10 * time.Second, store: src}
	fresh := &fakeReplica{id: "r-fresh", ready: true, lag: time.Millisecond, store: src}
	r := newTestRouter(t, src, 3, func(cfg *Config) {
		cfg.Hook = wedgePrimaries
		cfg.HedgeAfter = 5 * time.Millisecond
		cfg.Replicas = []ReplicaTarget{stale, fresh}
		cfg.Metrics = obs.NewRegistry()
	})
	single := core.New(src, core.Jaccard{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		part := fmt.Sprintf("P%03d", rng.Intn(12))
		feats := queryFeatures(rng)
		res, err := r.Query(context.Background(), part, feats)
		if err != nil {
			t.Fatalf("query %s: %v", part, err)
		}
		if !res.Hedged || !res.Replica {
			t.Fatalf("expected hedged replica answer, got hedged=%v replica=%v", res.Hedged, res.Replica)
		}
		if res.Stale {
			t.Fatal("fresh replica hedge flagged stale")
		}
		if res.Degraded {
			t.Fatal("replica-hedged answer flagged degraded")
		}
		if want := single.Recommend(part, feats); !reflect.DeepEqual(res.Codes, want) {
			t.Fatalf("replica-served ranking diverged\n got %v\nwant %v", res.Codes, want)
		}
	}
	if got := r.shards[0].replicaReads.Value() + r.shards[1].replicaReads.Value() + r.shards[2].replicaReads.Value(); got == 0 {
		t.Fatal("replica reads counter never advanced")
	}
}

func TestHedgeAvoidsStaleReplica(t *testing.T) {
	src := buildKB(22, 12, 8, 200)
	stale := &fakeReplica{id: "r-stale", ready: true, lag: 10 * time.Second, store: src}
	r := newTestRouter(t, src, 2, func(cfg *Config) {
		cfg.Hook = wedgePrimaries
		cfg.HedgeAfter = 5 * time.Millisecond
		cfg.Replicas = []ReplicaTarget{stale}
	})
	res, err := r.Query(context.Background(), "P001", []string{"f01", "f02"})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	// The only replica lags beyond the bound, so the hedge must fall back
	// to the shard's own second worker — not quietly serve stale.
	if !res.Hedged {
		t.Fatal("expected a hedged answer")
	}
	if res.Replica || res.Stale {
		t.Fatalf("stale replica served a hedge: replica=%v stale=%v", res.Replica, res.Stale)
	}
}

func TestRescueServesStaleWithFlag(t *testing.T) {
	src := buildKB(23, 12, 8, 200)
	stale := &fakeReplica{id: "r-stale", ready: true, lag: 10 * time.Second, store: src}
	r := newTestRouter(t, src, 3, func(cfg *Config) {
		cfg.Hook = failAll
		cfg.HedgeAfter = 5 * time.Millisecond
		cfg.Replicas = []ReplicaTarget{stale}
		cfg.Metrics = obs.NewRegistry()
	})
	single := core.New(src, core.Jaccard{})
	part, feats := "P002", []string{"f03", "f07", "f11"}
	res, err := r.Query(context.Background(), part, feats)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if !res.Replica || !res.Stale {
		t.Fatalf("latched primaries should rescue via stale replica: replica=%v stale=%v", res.Replica, res.Stale)
	}
	if res.Degraded {
		t.Fatal("rescued answer flagged degraded")
	}
	if want := single.Recommend(part, feats); !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("rescued ranking diverged\n got %v\nwant %v", res.Codes, want)
	}
	if got := r.stale.Value(); got == 0 {
		t.Fatal("stale responses counter never advanced")
	}
}

func TestRescueScatterBitIdentical(t *testing.T) {
	src := buildKB(24, 12, 8, 200)
	fresh := &fakeReplica{id: "r0", ready: true, lag: 0, store: src}
	r := newTestRouter(t, src, 3, func(cfg *Config) {
		cfg.Hook = failAll
		cfg.Replicas = []ReplicaTarget{fresh}
	})
	single := core.New(src, core.Jaccard{})
	// A part no shard owns: the scatter path, every sub-query rescued.
	part, feats := "PX99", []string{"f03", "f07"}
	res, err := r.Query(context.Background(), part, feats)
	if err != nil {
		t.Fatalf("scatter query: %v", err)
	}
	if !res.Scatter || !res.Replica {
		t.Fatalf("expected replica-rescued scatter, got scatter=%v replica=%v", res.Scatter, res.Replica)
	}
	if res.Stale {
		t.Fatal("fresh replica rescue flagged stale")
	}
	if want := single.Recommend(part, feats); !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("scatter-rescued ranking diverged\n got %v\nwant %v", res.Codes, want)
	}
}

func TestRescueRequiresReadyReplica(t *testing.T) {
	src := buildKB(25, 12, 8, 120)
	down := &fakeReplica{id: "r-down", ready: false, lag: 0, store: src}
	r := newTestRouter(t, src, 2, func(cfg *Config) {
		cfg.Hook = failAll
		cfg.Replicas = []ReplicaTarget{down}
	})
	if _, err := r.Query(context.Background(), "P001", []string{"f01"}); !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("query with only an unready replica = %v, want ErrAllShardsFailed", err)
	}
}

func TestBreakerOpenStillRescues(t *testing.T) {
	src := buildKB(26, 12, 8, 120)
	fresh := &fakeReplica{id: "r0", ready: true, lag: 0, store: src}
	r := newTestRouter(t, src, 1, func(cfg *Config) {
		cfg.Hook = failAll
		cfg.BreakerBudget = 1
		cfg.Replicas = []ReplicaTarget{fresh}
	})
	ctx := context.Background()
	// First query trips the single shard's breaker (and is rescued).
	if _, err := r.Query(ctx, "P001", []string{"f01"}); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if r.shards[0].breaker.State() != StateOpen {
		t.Fatalf("breaker state = %s, want open (rescue must not reset it)", r.shards[0].breaker.State())
	}
	// With the breaker open, sub-queries skip the primary entirely and go
	// straight to the replica.
	res, err := r.Query(ctx, "P001", []string{"f01"})
	if err != nil {
		t.Fatalf("breaker-open query: %v", err)
	}
	if !res.Replica {
		t.Fatal("breaker-open query not served by replica")
	}
}

func TestReplicaHealthReport(t *testing.T) {
	src := buildKB(27, 6, 4, 60)
	fresh := &fakeReplica{id: "r0", ready: true, lag: time.Millisecond, gen: 4}
	lagging := &fakeReplica{id: "r1", ready: true, lag: 10 * time.Second, gen: 3}
	r := newTestRouter(t, src, 2, func(cfg *Config) {
		cfg.Replicas = []ReplicaTarget{fresh, lagging}
	})
	hs := r.ReplicaHealth()
	if len(hs) != 2 {
		t.Fatalf("ReplicaHealth len = %d, want 2", len(hs))
	}
	if hs[0].ID != "r0" || hs[0].Stale || !hs[0].Ready || hs[0].LastAppliedGeneration != 4 {
		t.Fatalf("fresh replica health = %+v", hs[0])
	}
	if hs[1].ID != "r1" || !hs[1].Stale || hs[1].LastAppliedGeneration != 3 {
		t.Fatalf("lagging replica health = %+v", hs[1])
	}
	if hs[1].ApplyLagSeconds < 9 {
		t.Fatalf("lagging replica ApplyLagSeconds = %v, want ~10", hs[1].ApplyLagSeconds)
	}
}
