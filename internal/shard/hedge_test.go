package shard

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/kb"
)

// Satellite: hedged-request hygiene. The losing attempt's context must be
// cancelled once the winner returns, and the router must not leak
// goroutines — asserted by bracketing the whole exercise with goroutine
// counts.

// recordingHook observes every attempt's context so the test can assert
// cancellation, and makes the first attempt slow enough that the hedge
// always wins.
type recordingHook struct {
	mu       sync.Mutex
	attempts []attemptRecord
}

type attemptRecord struct {
	shard, attempt int
	ctx            context.Context
}

func (h *recordingHook) hook(ctx context.Context, shard, attempt int) error {
	h.mu.Lock()
	h.attempts = append(h.attempts, attemptRecord{shard, attempt, ctx})
	h.mu.Unlock()
	if attempt == 1 {
		// Losing attempt: stall until cancelled or a long fallback fires.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
			return nil
		}
	}
	return nil
}

func (h *recordingHook) record(shard, attempt int) (attemptRecord, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.attempts {
		if r.shard == shard && r.attempt == attempt {
			return r, true
		}
	}
	return attemptRecord{}, false
}

func TestHedgeCancelsLosingAttempt(t *testing.T) {
	before := runtime.NumGoroutine()

	src := buildKB(5, 12, 10, 250)
	hook := &recordingHook{}
	r := newTestRouter(t, src, 4, func(cfg *Config) {
		cfg.HedgeAfter = 2 * time.Millisecond
		cfg.ShardTimeout = time.Second
		cfg.Hook = hook.hook
	})

	part := "P004"
	if !src.KnownPart(part) {
		t.Fatalf("fixture part %s not in knowledge base", part)
	}
	res, err := r.Query(context.Background(), part, []string{"f03", "f11", "f27"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Fatal("query was not hedged")
	}
	if res.Degraded {
		t.Fatal("hedged query unexpectedly degraded")
	}

	// The losing first attempt's context must be cancelled promptly after
	// the hedge wins — not left to run out its 500ms stall.
	loser, ok := hook.record(kb.PartOwner(part, 4), 1)
	if !ok {
		t.Fatal("first attempt never reached the fault hook")
	}
	select {
	case <-loser.ctx.Done():
	case <-time.After(200 * time.Millisecond):
		t.Fatal("losing attempt's context was not cancelled")
	}
	if err := loser.ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("losing attempt ctx.Err() = %v, want context.Canceled", err)
	}

	// Closing the router must reclaim every worker and attempt goroutine.
	r.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after close", before, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
