package shard

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/kb"
)

// buildKB synthesizes a deterministic knowledge base: `bundles` training
// bundles over `parts` part IDs, `codes` error codes, and a 50-feature
// vocabulary.
func buildKB(seed int64, parts, codes, bundles int) *kb.Memory {
	rng := rand.New(rand.NewSource(seed))
	m := kb.NewMemory()
	for i := 0; i < bundles; i++ {
		part := fmt.Sprintf("P%03d", rng.Intn(parts))
		code := fmt.Sprintf("E%03d", rng.Intn(codes))
		n := 3 + rng.Intn(6)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(50))] = true
		}
		features := make([]string, 0, len(set))
		for f := range set {
			features = append(features, f)
		}
		sort.Strings(features)
		m.AddBundle(part, code, features)
	}
	return m
}

// queryFeatures draws a deterministic query feature set.
func queryFeatures(rng *rand.Rand) []string {
	n := 2 + rng.Intn(5)
	set := map[string]bool{}
	for len(set) < n {
		set[fmt.Sprintf("f%02d", rng.Intn(50))] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// newTestRouter partitions src n ways and builds a router with the given
// config overrides applied.
func newTestRouter(t *testing.T, src kb.Store, n int, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{Stores: PartitionStores(src, n)}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestShardedMatchesUnsharded: the merge is behavior-preserving — for
// every shard count, known parts and the unknown-part scatter fallback
// rank bit-identically to a single classifier over the whole store.
func TestShardedMatchesUnsharded(t *testing.T) {
	src := buildKB(7, 20, 15, 400)
	single := core.New(src, core.Jaccard{})
	rng := rand.New(rand.NewSource(11))

	queries := make([]struct {
		part  string
		feats []string
	}, 0, 40)
	for i := 0; i < 30; i++ {
		queries = append(queries, struct {
			part  string
			feats []string
		}{fmt.Sprintf("P%03d", rng.Intn(20)), queryFeatures(rng)})
	}
	for i := 0; i < 10; i++ { // parts no shard owns: the scatter fallback
		queries = append(queries, struct {
			part  string
			feats []string
		}{fmt.Sprintf("PX%02d", i), queryFeatures(rng)})
	}

	for _, n := range []int{1, 2, 4, 7} {
		r := newTestRouter(t, src, n, nil)
		for _, q := range queries {
			want := single.Recommend(q.part, q.feats)
			res, err := r.Query(context.Background(), q.part, q.feats)
			if err != nil {
				t.Fatalf("n=%d part=%s: %v", n, q.part, err)
			}
			if res.Degraded {
				t.Fatalf("n=%d part=%s: unexpected degraded response", n, q.part)
			}
			if !reflect.DeepEqual(res.Codes, want) {
				t.Errorf("n=%d part=%s: sharded ranking diverged\n got %v\nwant %v",
					n, q.part, res.Codes, want)
			}
			if known := src.KnownPart(q.part); known == res.Scatter {
				t.Errorf("n=%d part=%s: scatter=%v for known=%v", n, q.part, res.Scatter, known)
			}
		}
	}
}

// TestMergeNodesDeterministic: the merge order is total — score
// descending, then code, then node ID — and the cutoff applies after the
// merge.
func TestMergeNodesDeterministic(t *testing.T) {
	a := []core.ScoredNode{{ID: 4, Code: "E2", Score: 0.9}, {ID: 1, Code: "E1", Score: 0.5}}
	b := []core.ScoredNode{{ID: 3, Code: "E1", Score: 0.9}, {ID: 2, Code: "E3", Score: 0.5}}
	got := mergeNodes([][]core.ScoredNode{a, b}, 3)
	want := []core.ScoredNode{
		{ID: 3, Code: "E1", Score: 0.9}, // score ties break by code...
		{ID: 4, Code: "E2", Score: 0.9},
		{ID: 1, Code: "E1", Score: 0.5}, // ...then by node ID
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merge = %v, want %v", got, want)
	}
}

// TestRouterHealth: a fresh router reports every shard closed with its
// node count.
func TestRouterHealth(t *testing.T) {
	src := buildKB(3, 10, 8, 120)
	r := newTestRouter(t, src, 4, nil)
	hs := r.Health()
	if len(hs) != 4 {
		t.Fatalf("health entries = %d, want 4", len(hs))
	}
	total := 0
	for i, h := range hs {
		if h.ID != i || h.State != StateClosed || h.LastError != "" {
			t.Errorf("shard %d health = %+v", i, h)
		}
		total += h.Nodes
	}
	if total != src.NodeCount() {
		t.Errorf("partitioned nodes = %d, want %d", total, src.NodeCount())
	}
	if r.Degraded() {
		t.Error("fresh router reports degraded")
	}
}
