package shard

// Metric names the sharded serving tier emits, following the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix, conventional unit suffix, declared as package-level
// constants. Per-shard families carry a "shard" label.
const (
	// MetricShardRequestsTotal counts sub-queries dispatched to a shard
	// (label "shard"), including ones rejected by an open breaker.
	MetricShardRequestsTotal = "quest_shard_requests_total"
	// MetricShardFailuresTotal counts sub-queries a shard failed to answer
	// after hedging (label "shard"): errors, per-shard deadline expiry, and
	// open-breaker rejections.
	MetricShardFailuresTotal = "quest_shard_failures_total"
	// MetricShardHedgesTotal counts hedged second attempts issued (label
	// "shard").
	MetricShardHedgesTotal = "quest_shard_hedges_total"
	// MetricShardHedgeWinsTotal counts sub-queries won by the hedged
	// attempt, i.e. the primary attempt was cancelled as the loser (label
	// "shard").
	MetricShardHedgeWinsTotal = "quest_shard_hedge_wins_total"
	// MetricShardBreakerOpensTotal counts breaker trips (label "shard").
	MetricShardBreakerOpensTotal = "quest_shard_breaker_opens_total"
	// MetricShardDegradedTotal counts router responses served degraded
	// (partial results after a shard failure).
	MetricShardDegradedTotal = "quest_shard_degraded_responses_total"
	// MetricShardReplicaReadsTotal counts sub-queries dispatched to a read
	// replica on a shard's behalf — hedged attempts and rescues (label
	// "shard").
	MetricShardReplicaReadsTotal = "quest_shard_replica_reads_total"
	// MetricShardStaleTotal counts router responses served from a replica
	// lagging beyond MaxApplyLag, flagged stale in the envelope.
	MetricShardStaleTotal = "quest_shard_stale_responses_total"
	// MetricShardQueryDurationSeconds observes end-to-end router query
	// latency, fan-out and merge included.
	MetricShardQueryDurationSeconds = "quest_shard_query_duration_seconds"
	// MetricShardQueriesInflight gauges router queries currently in flight.
	MetricShardQueriesInflight = "quest_shard_queries_inflight"
)

// Span names the router opens, following the PR 3 tracing conventions
// (one root span per query, one child per shard attempt).
const (
	spanShardQuery   = "shard.query"
	spanShardAttempt = "shard.attempt"
)
