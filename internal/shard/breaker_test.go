package shard

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(3, time.Minute, clk.Now)

	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("fresh breaker must be closed and admitting")
	}

	// Failures below the budget keep it closed; the budget-th trips it.
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if tripped := b.Failure(boom); tripped {
			t.Fatalf("failure %d tripped early", i+1)
		}
	}
	if !b.Failure(boom) {
		t.Fatal("budget-th failure did not report a trip transition")
	}
	if b.State() != StateOpen || b.Allow() {
		t.Fatal("tripped breaker must be open and rejecting")
	}
	if last := b.LastError(); last == nil || last.Error() != "boom" {
		t.Errorf("last error = %v, want boom", last)
	}

	// A repeat failure while open is not a second trip transition.
	if b.Failure(boom) {
		t.Error("failure while open reported another trip")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.Advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker did not admit a half-open probe after cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state after probe admit = %s, want %s", b.State(), StateHalfOpen)
	}
	if b.Allow() {
		t.Error("half-open breaker admitted a second probe")
	}

	// Probe failure reopens — that re-open IS a trip transition (it feeds
	// the flight recorder); probe success closes.
	if !b.Failure(boom) {
		t.Error("probe failure did not report the re-open transition")
	}
	if b.State() != StateOpen {
		t.Fatal("probe failure did not reopen the breaker")
	}
	clk.Advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("probe success did not close the breaker")
	}
	if last := b.LastError(); last != nil {
		t.Errorf("last error after recovery = %v, want nil", last)
	}
}

func TestBreakerSuccessResetsBudget(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(2, time.Minute, clk.Now)
	boom := errors.New("boom")
	b.Failure(boom)
	b.Success() // consecutive counter resets
	if b.Failure(boom) {
		t.Fatal("first failure after a success tripped the breaker")
	}
	if !b.Failure(boom) {
		t.Fatal("budget-th consecutive failure did not trip")
	}
}
