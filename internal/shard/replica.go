package shard

import (
	"sort"
	"time"

	"repro/internal/kb"
)

// DefaultMaxApplyLag is the staleness bound replicas are held to before a
// read served from them is flagged stale (-max-apply-lag in questd).
const DefaultMaxApplyLag = 500 * time.Millisecond

// ReplicaTarget is what the router needs from a WAL-shipped read replica
// (internal/repl.Replica implements it structurally; the interface lives
// here so shard does not import the replication layer). A target serves
// the FULL knowledge base — the router carves the per-shard view itself —
// and may swap its backing store at any time (re-sync), so Store is
// fetched per query, never cached.
type ReplicaTarget interface {
	// ID names the replica in health, metrics, and wide events.
	ID() string
	// Ready reports whether the replica has state to serve at all.
	Ready() bool
	// ApplyLag reports how far the replica's applied state trails the
	// primary's log head; the router compares it to MaxApplyLag to decide
	// fresh (hedge-eligible) vs stale (rescue-only, flagged).
	ApplyLag() time.Duration
	// Generation reports the primary generation last applied (/readyz).
	Generation() uint64
	// Store returns the current serving view (nil when not Ready).
	Store() kb.Store
}

// ReplicaHealth is one replica's health view, served by /readyz.
type ReplicaHealth struct {
	ID                    string  `json:"id"`
	Ready                 bool    `json:"ready"`
	LastAppliedGeneration uint64  `json:"last_applied_generation"`
	ApplyLagSeconds       float64 `json:"apply_lag_seconds"`
	// Stale marks a replica lagging beyond the router's MaxApplyLag: it
	// still serves rescues, but its answers carry stale: true.
	Stale bool `json:"stale"`
}

// ReplicaHealth reports every configured replica's apply position.
func (r *Router) ReplicaHealth() []ReplicaHealth {
	out := make([]ReplicaHealth, len(r.cfg.Replicas))
	for i, t := range r.cfg.Replicas {
		lag := t.ApplyLag()
		out[i] = ReplicaHealth{
			ID:                    t.ID(),
			Ready:                 t.Ready(),
			LastAppliedGeneration: t.Generation(),
			ApplyLagSeconds:       lag.Seconds(),
			Stale:                 lag > r.cfg.MaxApplyLag,
		}
	}
	return out
}

// replicaStore is shard idx's live view over a replica: the same
// partition slice kb.Subset materializes, carved on the fly so a re-sync
// swapping the replica's backing store is picked up on the next call.
// Node IDs pass through untouched, so rankings served from a replica
// merge bit-identically with primary-shard rankings.
type replicaStore struct {
	t     ReplicaTarget
	shard int
	n     int
}

// view fetches the replica's current store (nil while bootstrapping).
func (s *replicaStore) view() kb.Store { return s.t.Store() }

// owned reports whether this shard's slice holds partID.
func (s *replicaStore) owned(partID string) bool {
	return kb.PartOwner(partID, s.n) == s.shard
}

// KnownPart implements kb.Store: known iff the part belongs to this
// shard's slice and the replicated KB holds nodes for it — exactly
// subsetStore's answer for the same shard.
func (s *replicaStore) KnownPart(partID string) bool {
	v := s.view()
	return v != nil && s.owned(partID) && v.KnownPart(partID)
}

// Candidates implements kb.Store under the standard contract: the
// inverted index drives selection for a known part; an unknown part falls
// back to every node of this shard's slice (the scatter path).
func (s *replicaStore) Candidates(partID string, features []string) []*kb.Node {
	v := s.view()
	if v == nil {
		return nil
	}
	if s.owned(partID) && v.KnownPart(partID) {
		return v.Candidates(partID, features)
	}
	return s.AllNodes()
}

// AllNodes implements kb.Store: the slice of the replicated KB this shard
// owns.
func (s *replicaStore) AllNodes() []*kb.Node {
	v := s.view()
	if v == nil {
		return nil
	}
	all := v.AllNodes()
	out := make([]*kb.Node, 0, len(all))
	for _, node := range all {
		if kb.PartOwner(node.PartID, s.n) == s.shard {
			out = append(out, node)
		}
	}
	return out
}

// NodeCount implements kb.Store (health/debug only; not on the serving
// path).
func (s *replicaStore) NodeCount() int { return len(s.AllNodes()) }

// CodeFrequencies implements kb.Store: a known owned part answers from
// the replicated frequencies; anything else aggregates over the owned
// slice, mirroring subsetStore's shard-local view of the world.
func (s *replicaStore) CodeFrequencies(partID string) []kb.CodeCount {
	v := s.view()
	if v == nil {
		return nil
	}
	if s.owned(partID) && v.KnownPart(partID) {
		return v.CodeFrequencies(partID)
	}
	agg := map[string]int{}
	for _, node := range s.AllNodes() {
		agg[node.ErrorCode]++
	}
	out := make([]kb.CodeCount, 0, len(agg))
	for code, n := range agg {
		out = append(out, kb.CodeCount{Code: code, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// BundleCount implements kb.Store (health/debug only): the owned share of
// the replicated bundle counts.
func (s *replicaStore) BundleCount() int {
	v := s.view()
	if v == nil {
		return 0
	}
	seen := map[string]bool{}
	total := 0
	for _, node := range s.AllNodes() {
		if seen[node.PartID] {
			continue
		}
		seen[node.PartID] = true
		for _, cc := range v.CodeFrequencies(node.PartID) {
			total += cc.Count
		}
	}
	return total
}

// replicaHandle is one shard's serving wrapper around one replica: a
// single-goroutine worker over the shard's live slice of that replica.
type replicaHandle struct {
	t ReplicaTarget
	w *worker
}

// pickReplica chooses the serving replica for shard h: the ready target
// with the smallest apply lag, optionally restricted to fresh ones (lag
// within MaxApplyLag). The second return is the chosen target's lag at
// pick time — the staleness verdict the response carries.
func (r *Router) pickReplica(h *handle, requireFresh bool) (*replicaHandle, time.Duration) {
	var best *replicaHandle
	var bestLag time.Duration
	for _, rh := range h.replicas {
		if !rh.t.Ready() {
			continue
		}
		lag := rh.t.ApplyLag()
		if requireFresh && lag > r.cfg.MaxApplyLag {
			continue
		}
		if best == nil || lag < bestLag {
			best, bestLag = rh, lag
		}
	}
	return best, bestLag
}
