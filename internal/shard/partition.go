package shard

import "repro/internal/kb"

// PartitionStores splits one knowledge-base store into n part-owned
// partitions (kb.Subset per shard), the Stores slice a Router serves.
// Node IDs are preserved, which is what makes the router's merge rank
// exactly like the unsharded classifier.
func PartitionStores(src kb.Store, n int) []kb.Store {
	if n <= 1 {
		n = 1
	}
	out := make([]kb.Store, n)
	for i := 0; i < n; i++ {
		out[i] = kb.Subset(src, i, n)
	}
	return out
}
