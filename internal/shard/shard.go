// Package shard is the sharded QUEST serving tier (ROADMAP item 2): the
// knowledge base is partitioned by part ID into N in-process shard
// workers, each owning its own store view and classifier state, behind a
// Router that fans queries out, merges ranked lists deterministically, and
// survives misbehaving shards. The paper's candidate selection (§4.3) keys
// on part ID, so shard routing is free; what this package builds is the
// robustness layer that makes the fan-out trustworthy — per-shard
// deadlines derived from the request budget, hedged second attempts
// (first-response-wins, loser cancelled via context), per-shard
// consecutive-failure circuit breakers, and graceful degradation to
// partial results marked `degraded`.
package shard

import (
	"context"
	"errors"
	"runtime/pprof"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/obs/reqlog"
)

// FaultHook runs at the start of every shard query attempt; the chaos
// tests inject deterministic misbehavior through it (internal/faults
// provides slow-shard, error-shard and wedged-shard modes). It may sleep,
// return an error, or block until ctx is cancelled; a nil hook is a
// healthy shard. attempt is 1 for the primary attempt, 2 for the hedge.
type FaultHook func(ctx context.Context, shard, attempt int) error

// ErrShardClosed reports a query dispatched to a closed router.
var ErrShardClosed = errors.New("shard: router closed")

// request is one sub-query travelling from the router to a shard worker.
type request struct {
	//lint:ignore qatklint/ctxflow the sanctioned channel-request exception: the request struct is the call — it carries the caller's ctx across the worker channel for exactly one dispatch and is never retained
	ctx      context.Context
	partID   string
	features []string
	// scatter selects all-local-nodes ranking for parts no shard owns;
	// owned mode answers only when the shard knows the part.
	scatter bool
	attempt int
	resp    chan response // buffered (1): the worker never blocks on reply
}

// response is a shard worker's answer.
type response struct {
	nodes []core.ScoredNode
	known bool
	err   error
	// replica marks an answer served by a read replica; stale additionally
	// marks the replica as lagging beyond the router's MaxApplyLag bound
	// when it answered.
	replica bool
	stale   bool
}

// worker is one in-process serving unit: a store partition (or a shard's
// live slice of a replica), its own classifier state, and a small pool of
// serving goroutines pulled from one request channel — so a wedged
// request occupies one goroutine while the hedged attempt proceeds on
// another. Routers also run one worker per shard x replica over the
// replica's live view; those carry the replica marker for pprof role
// attribution.
type worker struct {
	id      int
	idStr   string // pre-rendered for pprof labels
	replica bool   // serving a replica slice, not a primary partition
	clf     *core.Classifier
	reqs    chan request
	hook    FaultHook
	quit    chan struct{}
	closeMu sync.Once
}

// newWorker builds and starts one shard with `pool` serving goroutines.
func newWorker(id int, store kb.Store, sim core.Similarity, cutoff, pool int, hook FaultHook) *worker {
	w := &worker{
		id:    id,
		idStr: strconv.Itoa(id),
		clf:   &core.Classifier{Store: store, Sim: sim, NodeCutoff: cutoff},
		reqs:  make(chan request),
		hook:  hook,
		quit:  make(chan struct{}),
	}
	for i := 0; i < pool; i++ {
		go w.loop()
	}
	return w
}

// loop serves requests until the router closes.
func (w *worker) loop() {
	for {
		select {
		case <-w.quit:
			return
		case req := <-w.reqs:
			w.serve(req)
		}
	}
}

// serve answers one request. The response channel is buffered, so the
// send never blocks even when the caller has already given up. The work
// runs under pprof labels (shard ID, primary vs hedge role) so CPU
// profiles attribute serving time per shard and show what hedges cost.
func (w *worker) serve(req request) {
	if req.ctx.Err() != nil {
		return // the caller's deadline already expired in the queue
	}
	role := "primary"
	switch {
	case w.replica:
		role = "replica"
	case req.attempt > 1:
		role = "hedge"
	}
	pprof.Do(req.ctx, pprof.Labels("shard", w.idStr, "role", role), func(ctx context.Context) {
		w.answer(ctx, req)
	})
}

// answer produces the response for one labeled request.
func (w *worker) answer(ctx context.Context, req request) {
	if w.hook != nil {
		if err := w.hook(ctx, w.id, req.attempt); err != nil {
			req.resp <- response{err: err}
			return
		}
	}
	known := w.clf.Store.KnownPart(req.partID)
	if !req.scatter && !known {
		// Owned mode on a part this shard does not hold: report it so the
		// router falls back to a scatter query, instead of ranking every
		// local node against a part the shard was never asked to own.
		req.resp <- response{known: false}
		return
	}
	// The stage clock rides the request context from the quest middleware;
	// nil (request logging off) makes the classifier's timing free.
	sc := reqlog.ClockFrom(ctx)
	req.resp <- response{nodes: w.clf.RecommendNodesTimed(sc, req.partID, req.features), known: known}
}

// query dispatches one attempt and waits for the answer or the attempt
// context's expiry.
func (w *worker) query(ctx context.Context, partID string, features []string, scatter bool, attempt int) (response, error) {
	req := request{
		ctx: ctx, partID: partID, features: features,
		scatter: scatter, attempt: attempt,
		resp: make(chan response, 1),
	}
	select {
	case w.reqs <- req:
	case <-ctx.Done():
		return response{}, ctx.Err()
	case <-w.quit:
		return response{}, ErrShardClosed
	}
	select {
	case out := <-req.resp:
		if out.err != nil {
			return response{}, out.err
		}
		return out, nil
	case <-ctx.Done():
		return response{}, ctx.Err()
	case <-w.quit:
		return response{}, ErrShardClosed
	}
}

// close stops the worker pool; idempotent. In-flight attempts finish on
// their own deadlines (a wedged hook is released by its attempt context).
func (w *worker) close() { w.closeMu.Do(func() { close(w.quit) }) }
