package shard

import (
	"sync"
	"time"
)

// Breaker states, reported by State and /readyz.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a per-shard consecutive-failure circuit breaker. The trip
// rule reuses the PR 1 pipeline semantics — an error budget of
// *consecutive* failures, any success resets the streak — and adds the
// serving-tier recovery arc the long-lived router needs: an open breaker
// rejects sub-queries outright (shedding load off a misbehaving shard)
// until Cooldown has elapsed, then admits exactly one probe in half-open
// state; a probe success closes the breaker, a probe failure re-opens it
// for another cooldown.
type Breaker struct {
	budget   int
	cooldown time.Duration
	clock    func() time.Time

	mu          sync.Mutex
	state       string    //qatk:guardedby mu
	consecutive int       //qatk:guardedby mu
	openedAt    time.Time //qatk:guardedby mu
	probing     bool      //qatk:guardedby mu
	lastErr     error     //qatk:guardedby mu
}

// NewBreaker builds a closed breaker tripping after budget consecutive
// failures and probing again after cooldown. clock nil means time.Now.
func NewBreaker(budget int, cooldown time.Duration, clock func() time.Time) *Breaker {
	if budget <= 0 {
		budget = DefaultBreakerBudget
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if clock == nil {
		clock = time.Now
	}
	return &Breaker{budget: budget, cooldown: cooldown, clock: clock, state: StateClosed}
}

// Allow reports whether a sub-query may be dispatched now. In half-open
// state only one probe is admitted at a time; callers that got true must
// report the outcome via Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed sub-query: the breaker closes and the
// failure streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = StateClosed
	b.consecutive = 0
	b.probing = false
	b.lastErr = nil
}

// Failure records a failed sub-query and returns true when this failure
// tripped the breaker open (closed → open on the budget's exhaustion, or
// a failed half-open probe re-opening).
func (b *Breaker) Failure(err error) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = err
	switch b.state {
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = b.clock()
		b.probing = false
		return true
	case StateOpen:
		return false
	default:
		b.consecutive++
		if b.consecutive < b.budget {
			return false
		}
		b.state = StateOpen
		b.openedAt = b.clock()
		b.consecutive = 0
		return true
	}
}

// State reports the current state, resolving an elapsed cooldown as
// half-open so health reporting matches what Allow would do next.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.clock().Sub(b.openedAt) >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}

// LastError reports the most recent failure, nil after a success.
func (b *Breaker) LastError() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}
