package quest

import (
	"fmt"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/reldb"
)

// testServer stands up a QUEST instance over a small in-memory database.
func testServer(t *testing.T) (*httptest.Server, *reldb.DB) {
	t.Helper()
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	for _, create := range []func(*reldb.DB) error{
		bundle.CreateTables, core.CreateResultsTable, CreateUserTables,
		CreateCatalogTables, CreateAuditTables,
	} {
		if err := create(db); err != nil {
			t.Fatal(err)
		}
	}
	b := &bundle.Bundle{
		RefNo: "R001", ArticleCode: "A1", PartID: "P1",
		Reports: []bundle.Report{
			{Source: bundle.SourceMechanic, Text: "radio turns on and off"},
			{Source: bundle.SourceSupplier, Text: "kontakt defekt"},
		},
	}
	if err := bundle.Store(db, b); err != nil {
		t.Fatal(err)
	}
	if err := core.SaveRecommendations(db, "R001", []core.ScoredCode{
		{Code: "E1", Score: 0.9}, {Code: "E2", Score: 0.4},
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []CatalogEntry{
		{Code: "E1", PartID: "P1", Description: "contact failure"},
		{Code: "E2", PartID: "P1", Description: "loose wire"},
		{Code: "E9", PartID: "P1", Description: "water damage"},
	} {
		if err := AddCode(db, e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := AddUser(db, "alice", RoleAdmin); err != nil {
		t.Fatal(err)
	}
	if _, err := AddUser(db, "bob", RoleExpert); err != nil {
		t.Fatal(err)
	}
	internal := compare.FromCounts("internal OEM data", map[string]int{"E1": 5, "E2": 3})
	public := compare.FromCounts("NHTSA ODI complaints", map[string]int{"E2": 7, "E9": 2})
	srv, err := NewServer(Config{DB: db, Internal: internal, Public: public})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, db
}

// client returns an HTTP client with a cookie jar, logged in as name
// ("" = anonymous).
func client(t *testing.T, ts *httptest.Server, name string) *http.Client {
	t.Helper()
	jar, _ := cookiejar.New(nil)
	c := &http.Client{Jar: jar}
	if name != "" {
		resp, err := c.PostForm(ts.URL+"/login", url.Values{"name": {name}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	return c
}

func get(t *testing.T, c *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestBundleListAndDetail(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	code, body := get(t, c, ts.URL+"/")
	if code != 200 || !strings.Contains(body, "R001") {
		t.Fatalf("list: %d\n%s", code, body)
	}
	code, body = get(t, c, ts.URL+"/bundle/R001")
	if code != 200 {
		t.Fatalf("detail status %d", code)
	}
	for _, want := range []string{"radio turns on and off", "kontakt defekt", "E1", "0.900"} {
		if !strings.Contains(body, want) {
			t.Fatalf("detail missing %q:\n%s", want, body)
		}
	}
	// The suggestion list is capped at 10 and sorted: E1 before E2.
	if strings.Index(body, "E1") > strings.Index(body, "E2") {
		t.Fatal("suggestions not in rank order")
	}
}

func TestFullCodeListFallback(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	code, body := get(t, c, ts.URL+"/bundle/R001/codes")
	if code != 200 {
		t.Fatalf("codes status %d", code)
	}
	// All three catalog codes of P1 are offered, including E9 which is not
	// among the suggestions.
	for _, want := range []string{"E1", "E2", "E9", "water damage"} {
		if !strings.Contains(body, want) {
			t.Fatalf("code list missing %q", want)
		}
	}
}

func TestAssignRequiresLogin(t *testing.T) {
	ts, db := testServer(t)
	anon := client(t, ts, "")
	resp, err := anon.PostForm(ts.URL+"/bundle/R001/assign", url.Values{"code": {"E1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b, _ := bundle.Load(db, "R001")
	if b.ErrorCode != "" {
		t.Fatal("anonymous assignment succeeded")
	}
	// Logged-in expert can assign.
	bob := client(t, ts, "bob")
	resp, err = bob.PostForm(ts.URL+"/bundle/R001/assign", url.Values{"code": {"E1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b, _ = bundle.Load(db, "R001")
	if b.ErrorCode != "E1" {
		t.Fatalf("assignment failed: %q", b.ErrorCode)
	}
}

func TestPendingFilter(t *testing.T) {
	ts, db := testServer(t)
	if err := bundle.SetErrorCode(db, "R001", "E1"); err != nil {
		t.Fatal(err)
	}
	c := client(t, ts, "")
	_, body := get(t, c, ts.URL+"/?pending=1")
	if strings.Contains(body, `href="/bundle/R001"`) {
		t.Fatal("assigned bundle listed as pending")
	}
}

func TestAdminRights(t *testing.T) {
	ts, db := testServer(t)
	bob := client(t, ts, "bob") // expert, no extended rights
	resp, err := bob.PostForm(ts.URL+"/codes/new", url.Values{
		"code": {"E100"}, "part_id": {"P1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("expert creating codes: status %d", resp.StatusCode)
	}
	alice := client(t, ts, "alice") // admin
	resp, err = alice.PostForm(ts.URL+"/codes/new", url.Values{
		"code": {"E100"}, "part_id": {"P1"}, "description": {"new failure"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok, _ := GetCode(db, "E100"); !ok {
		t.Fatal("admin code creation failed")
	}
}

func TestUserManagement(t *testing.T) {
	ts, db := testServer(t)
	alice := client(t, ts, "alice")
	resp, err := alice.PostForm(ts.URL+"/users", url.Values{"name": {"carol"}, "role": {"expert"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok, _ := GetUser(db, "carol"); !ok {
		t.Fatal("user not created")
	}
	// Delete carol.
	resp, err = alice.PostForm(ts.URL+"/users/delete", url.Values{"name": {"carol"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok, _ := GetUser(db, "carol"); ok {
		t.Fatal("user not deleted")
	}
	// Cannot delete yourself.
	resp, err = alice.PostForm(ts.URL+"/users/delete", url.Values{"name": {"alice"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("self-delete status %d", resp.StatusCode)
	}
}

func TestLoginValidation(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	resp, err := c.PostForm(ts.URL+"/login", url.Values{"name": {"nobody"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "unknown user") {
		t.Fatal("unknown user accepted")
	}
}

func TestCompareScreen(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	code, body := get(t, c, ts.URL+"/compare")
	if code != 200 {
		t.Fatalf("compare status %d", code)
	}
	for _, want := range []string{"internal OEM data", "NHTSA ODI complaints", "62.5%", "77.8%"} {
		if !strings.Contains(body, want) {
			t.Fatalf("compare missing %q:\n%s", want, body)
		}
	}
}

func TestNotFound(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	if code, _ := get(t, c, ts.URL+"/bundle/NOPE"); code != 404 {
		t.Fatalf("missing bundle status %d", code)
	}
	if code, _ := get(t, c, ts.URL+"/totally/unknown"); code != 404 {
		t.Fatalf("unknown path status %d", code)
	}
}

func TestUserCRUDValidation(t *testing.T) {
	db, _ := reldb.Open("")
	if err := CreateUserTables(db); err != nil {
		t.Fatal(err)
	}
	if _, err := AddUser(db, "", RoleExpert); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := AddUser(db, "x", "superuser"); err == nil {
		t.Error("bad role accepted")
	}
	if _, err := AddUser(db, "x", RoleExpert); err != nil {
		t.Fatal(err)
	}
	if _, err := AddUser(db, "x", RoleAdmin); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := DeleteUser(db, "ghost"); err == nil {
		t.Error("deleting missing user succeeded")
	}
}

func TestCatalogValidation(t *testing.T) {
	db, _ := reldb.Open("")
	if err := CreateCatalogTables(db); err != nil {
		t.Fatal(err)
	}
	if err := AddCode(db, CatalogEntry{}); err == nil {
		t.Error("empty entry accepted")
	}
	if err := AddCode(db, CatalogEntry{Code: "E1", PartID: "P1"}); err != nil {
		t.Fatal(err)
	}
	if err := AddCode(db, CatalogEntry{Code: "E1", PartID: "P2"}); err == nil {
		t.Error("duplicate code accepted")
	}
	codes, err := CodesForPart(db, "P1")
	if err != nil || len(codes) != 1 {
		t.Fatalf("codes = %v, %v", codes, err)
	}
}

func TestBundleListPaginationAndPartFilter(t *testing.T) {
	ts, db := testServer(t)
	// Add 60 more bundles across two parts so pagination kicks in.
	for i := 0; i < 60; i++ {
		part := "P1"
		if i%2 == 0 {
			part = "P2"
		}
		b := &bundle.Bundle{
			RefNo: fmt.Sprintf("RX%03d", i), ArticleCode: "A1", PartID: part,
			Reports: []bundle.Report{{Source: bundle.SourceMechanic, Text: "x"}},
		}
		if err := bundle.Store(db, b); err != nil {
			t.Fatal(err)
		}
	}
	c := client(t, ts, "")
	// Page 1 shows 50 rows; page 2 the rest.
	_, body := get(t, c, ts.URL+"/?page=1")
	if !strings.Contains(body, "page 1/2") {
		t.Fatalf("pagination header missing:\n%.300s", body)
	}
	if strings.Count(body, `href="/bundle/`) != 50 {
		t.Fatalf("page 1 rows = %d", strings.Count(body, `href="/bundle/`))
	}
	_, body = get(t, c, ts.URL+"/?page=2")
	if strings.Count(body, `href="/bundle/`) != 11 {
		t.Fatalf("page 2 rows = %d", strings.Count(body, `href="/bundle/`))
	}
	// Part filter.
	_, body = get(t, c, ts.URL+"/?part=P2")
	if strings.Count(body, `href="/bundle/`) != 30 {
		t.Fatalf("P2 rows = %d", strings.Count(body, `href="/bundle/`))
	}
	if strings.Contains(body, ">P1<") {
		t.Fatal("filter leaked other parts")
	}
	// Out-of-range page clamps.
	if code, _ := get(t, c, ts.URL+"/?page=99"); code != 200 {
		t.Fatalf("page clamp status %d", code)
	}
}

func TestCompareScreenPieCharts(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	_, body := get(t, c, ts.URL+"/compare")
	if !strings.Contains(body, "conic-gradient(") {
		t.Fatal("pie charts missing from comparison screen")
	}
}
