// Package quest implements the Quality Engineering Support Tool web
// application (paper §4.5.4): quality experts view data bundles, see the
// 10 most likely error codes in descending order of likelihood, can fall
// back to the full per-part-ID code list, assign the final error code,
// define new error codes (extended rights), maintain users, and view the
// comparison of error-code distributions between the internal data set and
// the public US complaints database (§5.4, Fig. 14).
package quest

import (
	"fmt"

	"repro/internal/reldb"
)

// Role is a user's permission level.
type Role string

// Roles: experts assign codes; admins additionally define new error codes
// and maintain users ("users with extended rights", §4.5.4).
const (
	RoleExpert Role = "expert"
	RoleAdmin  Role = "admin"
)

func validRole(r Role) bool { return r == RoleExpert || r == RoleAdmin }

// User is one QUEST account.
type User struct {
	ID   int64
	Name string
	Role Role
}

// TableUsers is the user account table.
const TableUsers = "quest_users"

// CreateUserTables creates the user schema.
func CreateUserTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableUsers,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "name", Type: reldb.TString, NotNull: true},
			{Name: "role", Type: reldb.TString, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableUsers, "ux_users_name", true, "name")
}

// AddUser creates an account.
func AddUser(db *reldb.DB, name string, role Role) (*User, error) {
	if name == "" {
		return nil, fmt.Errorf("quest: empty user name")
	}
	if !validRole(role) {
		return nil, fmt.Errorf("quest: invalid role %q", role)
	}
	id, err := db.Insert(TableUsers, reldb.Row{nil, name, string(role)})
	if err != nil {
		return nil, err
	}
	return &User{ID: id, Name: name, Role: role}, nil
}

// GetUser looks an account up by name.
func GetUser(db *reldb.DB, name string) (*User, bool, error) {
	row, id, ok, err := db.SelectOne(reldb.Query{
		Table: TableUsers,
		Where: []reldb.Cond{reldb.Eq("name", name)},
	})
	if err != nil || !ok {
		return nil, false, err
	}
	return &User{ID: id, Name: row[1].(string), Role: Role(row[2].(string))}, true, nil
}

// ListUsers returns all accounts ordered by name.
func ListUsers(db *reldb.DB) ([]*User, error) {
	res, err := db.Select(reldb.Query{Table: TableUsers, OrderBy: "name"})
	if err != nil {
		return nil, err
	}
	out := make([]*User, 0, len(res.Rows))
	for i, row := range res.Rows {
		out = append(out, &User{ID: res.RowIDs[i], Name: row[1].(string), Role: Role(row[2].(string))})
	}
	return out, nil
}

// DeleteUser removes an account by name.
func DeleteUser(db *reldb.DB, name string) error {
	n, err := db.DeleteWhere(TableUsers, reldb.Eq("name", name))
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("quest: no user %q", name)
	}
	return nil
}
