package quest

import (
	"encoding/json"
	"net/http"
	"strings"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/reldb"
)

// JSON API for programmatic clients (mobile front ends, integration with
// the original quality engineering software):
//
//	GET  /api/bundles[?pending=1]       list bundles
//	GET  /api/bundle/{ref}              bundle + top-10 suggestions
//	POST /api/bundle/{ref}/assign       {"code": "..."} (requires session)
//	GET  /api/compare                   the §5.4 distributions
//	GET  /api/audit/summary             suggestion hit-rate (admin)

type apiBundle struct {
	RefNo              string            `json:"ref_no"`
	ArticleCode        string            `json:"article_code"`
	PartID             string            `json:"part_id"`
	ErrorCode          string            `json:"error_code,omitempty"`
	ResponsibilityCode string            `json:"responsibility_code,omitempty"`
	Reports            map[string]string `json:"reports,omitempty"`
	Suggestions        []apiSuggestion   `json:"suggestions,omitempty"`
}

type apiSuggestion struct {
	Rank  int     `json:"rank"`
	Code  string  `json:"code"`
	Score float64 `json:"score"`
}

func (s *Server) registerAPI() {
	s.mux.HandleFunc("/api/bundles", s.apiBundles)
	s.mux.HandleFunc("/api/bundle/", s.apiBundle)
	s.mux.HandleFunc("/api/compare", s.apiCompare)
	s.mux.HandleFunc("/api/audit/summary", s.apiAuditSummary)
	s.mux.HandleFunc("/api/recommend", s.apiRecommend)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func apiError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) apiBundles(w http.ResponseWriter, r *http.Request) {
	pendingOnly := r.URL.Query().Get("pending") == "1"
	res, err := s.db.Select(reldb.Query{Table: bundle.TableBundles, OrderBy: "ref_no"})
	if err != nil {
		apiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := make([]apiBundle, 0, len(res.Rows))
	for _, row := range res.Rows {
		ab := apiBundle{RefNo: row[1].(string), ArticleCode: row[2].(string), PartID: row[3].(string)}
		if row[4] != nil {
			ab.ErrorCode = row[4].(string)
		}
		if pendingOnly && ab.ErrorCode != "" {
			continue
		}
		out = append(out, ab)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) apiBundle(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/bundle/")
	parts := strings.Split(rest, "/")
	ref := parts[0]
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		b, err := bundle.Load(s.db, ref)
		if err != nil {
			apiError(w, http.StatusNotFound, "no such bundle")
			return
		}
		ab := apiBundle{
			RefNo: b.RefNo, ArticleCode: b.ArticleCode, PartID: b.PartID,
			ErrorCode: b.ErrorCode, ResponsibilityCode: b.ResponsibilityCode,
			Reports: map[string]string{},
		}
		for _, rep := range b.Reports {
			ab.Reports[string(rep.Source)] = rep.Text
		}
		if sugg, err := core.LoadRecommendations(s.db, ref, SuggestionLimit); err == nil {
			for i, sc := range sugg {
				ab.Suggestions = append(ab.Suggestions, apiSuggestion{Rank: i + 1, Code: sc.Code, Score: sc.Score})
			}
		}
		writeJSON(w, http.StatusOK, ab)
	case len(parts) == 2 && parts[1] == "assign" && r.Method == http.MethodPost:
		u := s.currentUser(r)
		if u == nil {
			apiError(w, http.StatusUnauthorized, "login required")
			return
		}
		var req struct {
			Code string `json:"code"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Code == "" {
			apiError(w, http.StatusBadRequest, "body must be {\"code\": \"...\"}")
			return
		}
		if err := bundle.SetErrorCode(s.db, ref, req.Code); err != nil {
			apiError(w, http.StatusNotFound, err.Error())
			return
		}
		s.audit(ref, req.Code, u.Name)
		writeJSON(w, http.StatusOK, map[string]string{"ref_no": ref, "error_code": req.Code})
	default:
		apiError(w, http.StatusNotFound, "unknown API path")
	}
}

func (s *Server) apiCompare(w http.ResponseWriter, r *http.Request) {
	if s.internal == nil || s.public == nil {
		apiError(w, http.StatusNotFound, "comparison data not loaded")
		return
	}
	type jsonShare struct {
		Code     string  `json:"code"`
		Count    int     `json:"count"`
		Fraction float64 `json:"fraction"`
	}
	toShares := func(shares []compare.Share) []jsonShare {
		out := make([]jsonShare, len(shares))
		for i, sh := range shares {
			out[i] = jsonShare{Code: sh.Code, Count: sh.Count, Fraction: sh.Fraction}
		}
		return out
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"internal": map[string]any{"source": s.internal.Source, "total": s.internal.Total, "top": toShares(s.internal.Top(10))},
		"public":   map[string]any{"source": s.public.Source, "total": s.public.Total, "top": toShares(s.public.Top(10))},
	})
}

func (s *Server) apiAuditSummary(w http.ResponseWriter, r *http.Request) {
	u := s.currentUser(r)
	if u == nil || !u.IsAdmin() {
		apiError(w, http.StatusForbidden, "extended rights required")
		return
	}
	fromSugg, total, meanRank, err := SuggestionHitRate(s.db)
	if err != nil {
		apiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"assignments":      total,
		"from_suggestions": fromSugg,
		"mean_rank":        meanRank,
	})
}
