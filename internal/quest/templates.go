package quest

import "html/template"

// The QUEST UI is plain server-rendered HTML with responsive CSS ("the
// QUEST web app ... implements responsive design to be viewable on mobile
// devices", §4.5.4).

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>QUEST — {{.Title}}</title>
<style>
body { font-family: system-ui, sans-serif; margin: 0; background: #f4f5f7; color: #1d2733; }
header { background: #15314f; color: #fff; padding: .7rem 1rem; display: flex; flex-wrap: wrap; gap: 1rem; align-items: baseline; }
header h1 { font-size: 1.1rem; margin: 0; }
header nav a { color: #bcd2ea; margin-right: .8rem; text-decoration: none; }
header nav a:hover { color: #fff; }
main { max-width: 60rem; margin: 1rem auto; padding: 0 1rem; }
table { border-collapse: collapse; width: 100%; background: #fff; }
th, td { text-align: left; padding: .45rem .6rem; border-bottom: 1px solid #e2e6ea; }
tr.suggestion-top { background: #eaf4e8; }
.card { background: #fff; border: 1px solid #e2e6ea; border-radius: 6px; padding: 1rem; margin-bottom: 1rem; }
.report { white-space: pre-wrap; font-size: .92rem; }
.badge { display: inline-block; background: #dde7f2; border-radius: 4px; padding: .1rem .45rem; font-size: .8rem; }
form.inline { display: inline; }
button, input[type=submit] { background: #15314f; color: #fff; border: 0; border-radius: 4px; padding: .35rem .8rem; cursor: pointer; }
input[type=text], select { padding: .3rem; border: 1px solid #c4ccd4; border-radius: 4px; }
.error { color: #8d2323; }
@media (max-width: 40rem) { th, td { padding: .3rem; font-size: .85rem; } main { padding: 0 .4rem; } }
</style>
</head>
<body>
<header>
  <h1>QUEST — Quality Engineering Support Tool</h1>
  <nav>
    <a href="/">Bundles</a>
    <a href="/compare">Data comparison</a>
    {{if .User}}{{if .User.IsAdmin}}<a href="/codes/new">New error code</a>
    <a href="/users">Users</a>
    <a href="/audit">Audit</a>{{end}}
    <span class="badge">{{.User.Name}} ({{.User.Role}})</span>
    <a href="/logout">Logout</a>
    {{else}}<a href="/login">Login</a>{{end}}
  </nav>
</header>
<main>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
{{.Body}}
</main>
</body>
</html>`))

var bodyTmpls = template.Must(template.New("bodies").Funcs(template.FuncMap{
	"rank": func(i int) int { return i + 1 },
}).Parse(`
{{define "login"}}
<div class="card">
<h2>Login</h2>
<form method="post" action="/login">
  <label>User name <input type="text" name="name" autofocus></label>
  <input type="submit" value="Login">
</form>
</div>
{{end}}

{{define "bundles"}}
<h2>Data bundles {{if .PendingOnly}}(pending){{end}}{{if .Part}} — part {{.Part}}{{end}}</h2>
<p>
  <a href="/?pending=1">Pending only</a> · <a href="/">All</a>
  — {{.Matches}} bundles, page {{.Page}}/{{.TotalPages}}
  {{if gt .Page 1}}<a href="/?page={{.PrevPage}}{{.BaseQuery}}">&laquo; prev</a>{{end}}
  {{if lt .Page .TotalPages}}<a href="/?page={{.NextPage}}{{.BaseQuery}}">next &raquo;</a>{{end}}
</p>
<form method="get" action="/">
  <label>Filter by part ID <input type="text" name="part" value="{{.Part}}"></label>
  {{if .PendingOnly}}<input type="hidden" name="pending" value="1">{{end}}
  <input type="submit" value="Filter">
</form>
<table>
<tr><th>Reference</th><th>Part ID</th><th>Article</th><th>Error code</th></tr>
{{range .Bundles}}
<tr>
  <td><a href="/bundle/{{.RefNo}}">{{.RefNo}}</a></td>
  <td>{{.PartID}}</td>
  <td>{{.ArticleCode}}</td>
  <td>{{if .ErrorCode}}{{.ErrorCode}}{{else}}<em>unassigned</em>{{end}}</td>
</tr>
{{end}}
</table>
{{end}}

{{define "bundle"}}
<h2>Bundle {{.Bundle.RefNo}}</h2>
<div class="card">
  <span class="badge">part {{.Bundle.PartID}}</span>
  <span class="badge">article {{.Bundle.ArticleCode}}</span>
  {{if .Bundle.ErrorCode}}<span class="badge">final code {{.Bundle.ErrorCode}}</span>{{end}}
  {{if .Bundle.ResponsibilityCode}}<span class="badge">responsibility {{.Bundle.ResponsibilityCode}}</span>{{end}}
</div>
{{range .Bundle.Reports}}
<div class="card">
  <h3>{{.Source}}</h3>
  <p class="report">{{.Text}}</p>
</div>
{{end}}
<div class="card">
<h3>Suggested error codes</h3>
{{if .Suggestions}}
<table>
<tr><th>#</th><th>Error code</th><th>Score</th><th></th></tr>
{{range $i, $s := .Suggestions}}
<tr {{if eq $i 0}}class="suggestion-top"{{end}}>
  <td>{{rank $i}}</td><td>{{$s.Code}}</td><td>{{printf "%.3f" $s.Score}}</td>
  <td>
    <form class="inline" method="post" action="/bundle/{{$.Bundle.RefNo}}/assign">
      <input type="hidden" name="code" value="{{$s.Code}}">
      <input type="submit" value="Assign">
    </form>
  </td>
</tr>
{{end}}
</table>
{{else}}<p><em>No stored suggestions for this bundle.</em></p>{{end}}
<p><a href="/bundle/{{.Bundle.RefNo}}/codes">Correct code not listed? Show all codes for part {{.Bundle.PartID}}</a></p>
</div>
{{end}}

{{define "codes"}}
<h2>All error codes for part {{.PartID}} (bundle {{.RefNo}})</h2>
<table>
<tr><th>Error code</th><th>Description</th><th></th></tr>
{{range .Codes}}
<tr>
  <td>{{.Code}}</td><td>{{.Description}}</td>
  <td>
    <form class="inline" method="post" action="/bundle/{{$.RefNo}}/assign">
      <input type="hidden" name="code" value="{{.Code}}">
      <input type="submit" value="Assign">
    </form>
  </td>
</tr>
{{end}}
</table>
{{end}}

{{define "newcode"}}
<h2>Create new error code</h2>
<div class="card">
<form method="post" action="/codes/new">
  <p><label>Code <input type="text" name="code"></label></p>
  <p><label>Part ID <input type="text" name="part_id"></label></p>
  <p><label>Description <input type="text" name="description" size="50"></label></p>
  <input type="submit" value="Create">
</form>
</div>
{{end}}

{{define "users"}}
<h2>User maintenance</h2>
<table>
<tr><th>Name</th><th>Role</th><th></th></tr>
{{range .Users}}
<tr>
  <td>{{.Name}}</td><td>{{.Role}}</td>
  <td>
    <form class="inline" method="post" action="/users/delete">
      <input type="hidden" name="name" value="{{.Name}}">
      <input type="submit" value="Delete">
    </form>
  </td>
</tr>
{{end}}
</table>
<div class="card">
<form method="post" action="/users">
  <label>Name <input type="text" name="name"></label>
  <label>Role
    <select name="role"><option>expert</option><option>admin</option></select>
  </label>
  <input type="submit" value="Add user">
</form>
</div>
{{end}}

{{define "audit"}}
<h2>Assignment audit trail</h2>
<div class="card">
<p>{{.FromSuggestions}} of {{.Total}} audited assignments came straight from the
suggestion list (mean picked rank {{.MeanRank}}).</p>
</div>
<table>
<tr><th>When (UTC)</th><th>Bundle</th><th>Code</th><th>User</th><th>Via</th><th>Rank</th></tr>
{{range .Entries}}
<tr>
  <td>{{.At.Format "2006-01-02 15:04:05"}}</td>
  <td><a href="/bundle/{{.RefNo}}">{{.RefNo}}</a></td>
  <td>{{.Code}}</td><td>{{.User}}</td><td>{{.Source}}</td>
  <td>{{if .SuggRank}}{{.SuggRank}}{{else}}-{{end}}</td>
</tr>
{{end}}
</table>
{{end}}

{{define "compare"}}
<h2>Error distribution: internal vs public data source</h2>
<p>Top error codes assigned in the internal OEM data and, via the
QATK knowledge base, to the NHTSA ODI complaints (§5.4).</p>
<div class="card" style="display:flex; gap:2rem; justify-content:center;">
  <div style="text-align:center;">
    <div style="width:9rem;height:9rem;border-radius:50%;margin:0 auto;background:{{.LeftPie}};"></div>
    <p>{{.Internal.Source}}</p>
  </div>
  <div style="text-align:center;">
    <div style="width:9rem;height:9rem;border-radius:50%;margin:0 auto;background:{{.RightPie}};"></div>
    <p>{{.Public.Source}}</p>
  </div>
</div>
<div class="card">
<table>
<tr><th colspan="2">{{.Internal.Source}}</th><th colspan="2">{{.Public.Source}}</th></tr>
{{range .Rows}}
<tr><td>{{.LCode}}</td><td>{{.LShare}}</td><td>{{.RCode}}</td><td>{{.RShare}}</td></tr>
{{end}}
</table>
</div>
{{end}}
`))
