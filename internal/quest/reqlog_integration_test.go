package quest

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
	"repro/internal/reldb"
	"repro/internal/shard"
)

// Tentpole acceptance: one wide event assembled across the whole serving
// path round-trips identically through /debug/requests, the flight-recorder
// bundle, and the `qatk requests` renderer — and with exemplars enabled the
// /metrics exposition carries the retained request's trace ID.
func TestWideEventEndToEnd(t *testing.T) {
	metrics := obs.NewRegistry()
	reqLog := reqlog.New(reqlog.Config{SampleAll: true, Registry: metrics})
	recorder := flight.New(flight.Config{Dir: t.TempDir(), Registry: metrics, Requests: reqLog})
	t.Cleanup(recorder.Close)

	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	src := shardKB(t)
	router, err := shard.New(shard.Config{Stores: shard.PartitionStores(src, 4)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv, err := NewServer(Config{
		DB: db, Shards: router, Metrics: metrics,
		Flight: recorder, Requests: reqLog, Exemplars: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	part := "P03"
	if !src.KnownPart(part) {
		t.Fatalf("fixture part %s unknown", part)
	}
	var out apiRecommendation
	if code := getJSON(t, ts.URL+"/api/recommend?part="+part+"&features=f01,f05,f11", &out); code != http.StatusOK {
		t.Fatalf("recommend = %d, want 200", code)
	}

	// The debug handler view (what questd mounts at /debug/requests).
	dbg := httptest.NewServer(reqLog.Handler())
	t.Cleanup(dbg.Close)
	var events []reqlog.Event
	if code := getJSON(t, dbg.URL, &events); code != http.StatusOK {
		t.Fatalf("/debug/requests = %d, want 200", code)
	}
	if len(events) != 1 {
		t.Fatalf("retained %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Method != "GET" || ev.Route != "/api/recommend" || ev.Status != http.StatusOK {
		t.Fatalf("event identity = %s %s %d, want GET /api/recommend 200", ev.Method, ev.Route, ev.Status)
	}
	if ev.TraceID == "" || ev.Duration <= 0 {
		t.Fatalf("event missing trace/duration: %+v", ev)
	}
	if ev.Part != part || ev.Features != 3 {
		t.Fatalf("query identity = part=%q features=%d, want %s/3", ev.Part, ev.Features, part)
	}
	stages := map[string]bool{}
	for _, st := range ev.Stages {
		stages[st.Name] = true
	}
	if !stages["score"] || !stages["rank"] || !stages["dedup"] {
		t.Fatalf("stages %v missing score/rank/dedup", ev.Stages)
	}
	winners := 0
	for _, a := range ev.Shards {
		if a.Winner {
			winners++
			if a.Breaker != shard.StateClosed {
				t.Errorf("winning attempt breaker = %q, want closed", a.Breaker)
			}
		}
	}
	if winners != 1 {
		t.Fatalf("shard attempts %+v: %d winners, want 1", ev.Shards, winners)
	}

	// The flight bundle freezes and round-trips the same event.
	_, bdir, err := recorder.CaptureNow("test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Requests, events) {
		t.Fatalf("bundle requests diverge from /debug/requests:\nbundle: %+v\nhandler: %+v", b.Requests, events)
	}

	// The `qatk requests` renderer presents the same event.
	var report bytes.Buffer
	if err := reqlog.WriteReport(&report, b.Requests); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "trace="+ev.TraceID) {
		t.Fatalf("report lacks trace %s:\n%s", ev.TraceID, report.String())
	}

	// The /metrics exposition carries the retained request's trace ID as
	// an OpenMetrics exemplar on a latency bucket.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `# {trace_id="`+ev.TraceID+`"}`) {
		t.Fatalf("/metrics lacks exemplar for trace %s", ev.TraceID)
	}
	if !strings.Contains(string(body), MetricReqExemplarsTotal+" 1") {
		t.Fatalf("/metrics lacks %s 1", MetricReqExemplarsTotal)
	}
}
