package quest

import (
	"fmt"

	"repro/internal/reldb"
)

// The error-code catalog: the list of all error codes available for a part
// ID, which the expert falls back to when the correct code is not among
// the top-10 suggestions, and which admins can extend with new codes right
// in the QUEST interface (§4.5.4).

// CatalogEntry is one error code of the catalog.
type CatalogEntry struct {
	Code        string
	PartID      string
	Description string
}

// TableCatalog is the error-code catalog table.
const TableCatalog = "quest_error_codes"

// CreateCatalogTables creates the catalog schema.
func CreateCatalogTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableCatalog,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "code", Type: reldb.TString, NotNull: true},
			{Name: "part_id", Type: reldb.TString, NotNull: true},
			{Name: "description", Type: reldb.TString},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	if err := db.CreateIndex(TableCatalog, "ux_catalog_code", true, "code"); err != nil {
		return err
	}
	return db.CreateIndex(TableCatalog, "ix_catalog_part", false, "part_id")
}

// AddCode registers a new error code for a part.
func AddCode(db *reldb.DB, e CatalogEntry) error {
	if e.Code == "" || e.PartID == "" {
		return fmt.Errorf("quest: catalog entry needs code and part ID")
	}
	_, err := db.Insert(TableCatalog, reldb.Row{nil, e.Code, e.PartID, e.Description})
	return err
}

// CodesForPart lists the catalog entries of a part, ordered by code.
func CodesForPart(db *reldb.DB, partID string) ([]CatalogEntry, error) {
	res, err := db.Select(reldb.Query{
		Table:   TableCatalog,
		Where:   []reldb.Cond{reldb.Eq("part_id", partID)},
		OrderBy: "code",
	})
	if err != nil {
		return nil, err
	}
	out := make([]CatalogEntry, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, entryFromRow(row))
	}
	return out, nil
}

// GetCode looks up one catalog entry.
func GetCode(db *reldb.DB, code string) (CatalogEntry, bool, error) {
	row, _, ok, err := db.SelectOne(reldb.Query{
		Table: TableCatalog,
		Where: []reldb.Cond{reldb.Eq("code", code)},
	})
	if err != nil || !ok {
		return CatalogEntry{}, false, err
	}
	return entryFromRow(row), true, nil
}

func entryFromRow(row reldb.Row) CatalogEntry {
	e := CatalogEntry{Code: row[1].(string), PartID: row[2].(string)}
	if row[3] != nil {
		e.Description = row[3].(string)
	}
	return e
}
