package quest

// Metric names the QUEST serving tier emits, following the repository
// convention enforced by qatklint's metricname analyzer: snake_case,
// subsystem prefix, conventional unit suffix, declared as package-level
// constants.
const (
	// MetricHTTPRequestsTotal counts completed requests by status code
	// (label "code").
	MetricHTTPRequestsTotal = "quest_http_requests_total"
	// MetricHTTPRequestDurationSeconds observes wall-clock request latency.
	MetricHTTPRequestDurationSeconds = "quest_http_request_duration_seconds"
	// MetricHTTPRequestsInflight gauges requests currently being served.
	MetricHTTPRequestsInflight = "quest_http_requests_inflight"
	// MetricPanicsTotal counts handler panics absorbed by Recover.
	MetricPanicsTotal = "quest_panics_total"
	// MetricTimeoutsTotal counts requests cut short by WithTimeout.
	MetricTimeoutsTotal = "quest_timeouts_total"
	// MetricReqExemplarsTotal counts latency-histogram exemplars recorded
	// from retained wide events (only with exemplars enabled).
	MetricReqExemplarsTotal = "quest_req_exemplars_total"
)
