package quest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Graceful serving: run an http.Server until a stop signal, then drain
// in-flight requests for up to shutdownTimeout before closing remaining
// connections hard.

// ServeUntil runs srv.ListenAndServe and, once stop delivers or closes,
// shuts the server down gracefully. It returns nil on a clean drain, the
// listen error if the server never came up, or the shutdown error when the
// timeout expired with requests still in flight (those connections are
// then force-closed).
func ServeUntil(srv *http.Server, shutdownTimeout time.Duration, stop <-chan struct{}) error {
	return serveUntil(srv.ListenAndServe, srv, shutdownTimeout, stop)
}

// ServeListenerUntil is ServeUntil over an existing listener (tests, port
// 0 binds).
func ServeListenerUntil(l net.Listener, srv *http.Server, shutdownTimeout time.Duration, stop <-chan struct{}) error {
	return serveUntil(func() error { return srv.Serve(l) }, srv, shutdownTimeout, stop)
}

func serveUntil(serve func() error, srv *http.Server, shutdownTimeout time.Duration, stop <-chan struct{}) error {
	errc := make(chan error, 1)
	go func() { errc <- serve() }()
	select {
	case err := <-errc:
		// The listener failed (or the server was closed elsewhere) before
		// any stop signal.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-stop:
	}
	// Deriving the drain budget from context.Background() is correct here,
	// and qatklint/ctxflow agrees by construction: its request-path roots
	// are scoped to request entry points (handlers, Router methods,
	// RunWithConfig), so lifecycle code like this shutdown path is exempt
	// by design — the in-flight request contexts are exactly what this
	// fresh timeout exists to outlive.
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("quest: shutdown: %w", err)
	}
	return nil
}
