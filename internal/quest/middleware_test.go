package quest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/reldb"
)

// syncBuilder is a strings.Builder safe for the concurrent writes a live
// HTTP server produces.
type syncBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestRecoverMiddleware: a panicking handler answers 500, the panic is
// counted and logged, and the wrapping handler (the process) stays alive
// for the next request.
func TestRecoverMiddleware(t *testing.T) {
	var logged syncBuilder
	logger := obs.NewLogger(&logged, obs.LevelInfo)
	reg := obs.NewRegistry()
	panics := reg.Counter(MetricPanicsTotal)
	calls := 0
	h := Recover(logger, panics, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.URL.Path == "/boom" {
			panic("handler bug")
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(logged.String(), "handler bug") || !strings.Contains(logged.String(), "path=/boom") {
		t.Fatalf("panic not logged with attribution: %q", logged.String())
	}
	if got := panics.Value(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	// The process survived: the next request is served normally.
	resp, err = http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || calls != 2 {
		t.Fatalf("status=%d calls=%d after panic", resp.StatusCode, calls)
	}
}

// TestServerPanicReturns500 drives a panic through the full Server handler
// chain via a route registered on the internal mux.
func TestServerPanicReturns500(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var logged syncBuilder
	s, err := NewServer(Config{DB: db, Logger: obs.NewLogger(&logged, obs.LevelInfo)})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/test/panic", func(http.ResponseWriter, *http.Request) {
		panic("injected handler panic")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/test/panic")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(logged.String(), "injected handler panic") {
		t.Fatal("panic not logged with attribution")
	}
	// Liveness is unaffected.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
}

func TestWithTimeoutBoundsSlowHandlers(t *testing.T) {
	handlerDone := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer close(handlerDone)
		select {
		case <-time.After(2 * time.Second):
			w.WriteHeader(http.StatusOK)
		case <-r.Context().Done():
		}
	})
	reg := obs.NewRegistry()
	timeouts := reg.Counter(MetricTimeoutsTotal)
	var logged syncBuilder
	logger := obs.NewLogger(&logged, obs.LevelInfo)
	ts := httptest.NewServer(WithTimeout(20*time.Millisecond, timeouts, logger, slow))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout middleware did not cut the handler short")
	}
	// The watcher runs after the handler goroutine returns; wait for it.
	select {
	case <-handlerDone:
	case <-time.After(time.Second):
		t.Fatal("handler never observed its context deadline")
	}
	deadline := time.Now().Add(time.Second)
	for timeouts.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := timeouts.Value(); got != 1 {
		t.Fatalf("timeouts counter = %d, want 1", got)
	}
	if !strings.Contains(logged.String(), `msg="request timed out"`) {
		t.Fatalf("timeout not logged: %q", logged.String())
	}
}

// TestInstrumentMiddleware: one request through Instrument increments the
// status-coded request counter, observes one latency sample, records a
// span, and returns the in-flight gauge to zero.
func TestInstrumentMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(8)
	var sawInflight float64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawInflight = reg.Gauge(MetricHTTPRequestsInflight).Value()
		w.WriteHeader(http.StatusTeapot)
	})
	rec := httptest.NewRecorder()
	Instrument(reg, tr, nil, nil, false, inner).ServeHTTP(rec, httptest.NewRequest("GET", "/bundle/R1", nil))

	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if sawInflight != 1 {
		t.Errorf("in-flight during request = %g, want 1", sawInflight)
	}
	if got := reg.Gauge(MetricHTTPRequestsInflight).Value(); got != 0 {
		t.Errorf("in-flight after request = %g, want 0", got)
	}
	if got := reg.Counter(MetricHTTPRequestsTotal, obs.L("code", "418")).Value(); got != 1 {
		t.Errorf("request counter = %d, want 1", got)
	}
	if got := reg.Histogram(MetricHTTPRequestDurationSeconds, obs.DefBuckets).Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != spanHTTPRequest {
		t.Fatalf("spans = %+v", spans)
	}
	var gotCode bool
	for _, a := range spans[0].Attrs {
		if a == obs.L("code", "418") {
			gotCode = true
		}
	}
	if !gotCode {
		t.Errorf("span attrs missing status code: %+v", spans[0].Attrs)
	}
}

// TestInstrumentPreservesFlusher: statusRecorder forwards Flush and
// exposes the wrapped writer via Unwrap, so streaming handlers behind
// Instrument keep their http.Flusher / ResponseController support.
func TestInstrumentPreservesFlusher(t *testing.T) {
	var flushed bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("instrumented writer lost http.Flusher")
			return
		}
		fmt.Fprint(w, "chunk")
		f.Flush()
		flushed = true
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController.Flush via Unwrap: %v", err)
		}
	})
	rec := httptest.NewRecorder()
	Instrument(obs.NewRegistry(), obs.NewTracer(8), nil, nil, false, inner).ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed {
		t.Fatal("handler never reached Flush")
	}
	if !rec.Flushed {
		t.Fatal("Flush was not forwarded to the underlying writer")
	}
}

// TestServerServesMetrics: the full server exposes a parseable exposition
// on /metrics including the serving and build families.
func TestServerServesMetrics(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reg := obs.NewRegistry()
	s, err := NewServer(Config{DB: db, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One application request so the request counter has a real sample.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE quest_http_requests_total counter",
		`quest_http_requests_total{code="200"} 1`,
		"# TYPE quest_http_request_duration_seconds histogram",
		"quest_http_request_duration_seconds_bucket",
		"# TYPE quest_panics_total counter",
		"# TYPE quest_timeouts_total counter",
		"# TYPE build_info gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestHealthAndReadiness(t *testing.T) {
	// A full application database with comparison data: fully ready.
	ts, _ := testServer(t)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd struct{ Status, DB, Comparison string }
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rd.Status != "ok" || rd.DB != "ok" {
		t.Fatalf("readyz: %d %+v", resp.StatusCode, rd)
	}
	if rd.Comparison != "loaded" {
		t.Fatalf("comparison state = %q, want loaded", rd.Comparison)
	}
}

func TestReadinessReportsComparisonNote(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := NewServer(Config{DB: db, ComparisonNote: "no ODI complaints imported"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rd struct{ Status, DB, Comparison string }
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// No bundles table in this bare database: not ready, and the degraded
	// comparison carries its reason.
	if resp.StatusCode != http.StatusServiceUnavailable || rd.Status != "unavailable" {
		t.Fatalf("readyz on bare db: %d %+v", resp.StatusCode, rd)
	}
	if rd.Comparison != "degraded: no ODI complaints imported" {
		t.Fatalf("comparison = %q", rd.Comparison)
	}
}

// TestGracefulDrain: under in-flight load, a stop signal lets running
// requests complete within the shutdown budget, then the listener closes.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		started <- struct{}{}
		<-release
		fmt.Fprint(w, "done")
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeListenerUntil(l, srv, 5*time.Second, stop) }()
	base := "http://" + l.Addr().String()

	// The server answers liveness probes under load.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Put three requests in flight, then signal shutdown.
	const inFlight = 3
	var wg sync.WaitGroup
	bodies := make([]string, inFlight)
	errs := make([]error, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(base + "/work")
			if err != nil {
				errs[i] = err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			bodies[i] = string(b)
		}(i)
	}
	for i := 0; i < inFlight; i++ {
		<-started
	}
	close(stop)
	// Give Shutdown a moment to close the listener, then release handlers.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("ServeListenerUntil = %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop after drain")
	}
	for i := 0; i < inFlight; i++ {
		if errs[i] != nil || bodies[i] != "done" {
			t.Fatalf("in-flight request %d: body=%q err=%v", i, bodies[i], errs[i])
		}
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestShutdownTimeoutForcesClose: a handler that never finishes cannot hold
// shutdown hostage past the budget.
func TestShutdownTimeoutForcesClose(t *testing.T) {
	started := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-r.Context().Done() // hangs until the connection is force-closed
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	stop := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() { serveErr <- ServeListenerUntil(l, srv, 100*time.Millisecond, stop) }()

	go func() {
		resp, err := http.Get("http://" + l.Addr().String())
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	close(stop)
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("expected a shutdown-timeout error for the stuck handler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not force-close the stuck connection")
	}
}

// TestPanicTriggersFlightBundle: a recovered handler panic is a hard
// anomaly — the flight recorder wired through Config.Flight captures a
// diagnostic bundle attributing the panicking request, and the server
// keeps serving afterwards.
func TestPanicTriggersFlightBundle(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dir := t.TempDir()
	fr := flight.New(flight.Config{
		Dir:         dir,
		Logger:      obs.NewLogger(io.Discard, obs.LevelError),
		MinInterval: -1,
	})
	defer fr.Close()
	s, err := NewServer(Config{
		DB: db, Logger: obs.NewLogger(io.Discard, obs.LevelError), Flight: fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("/test/panic", func(http.ResponseWriter, *http.Request) {
		panic("flight test panic")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/test/panic")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	bdir := fr.LastBundleDir()
	if bdir == "" {
		t.Fatal("panic did not produce a flight bundle")
	}
	b, err := flight.ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != flight.ReasonPanic || b.Details["path"] != "/test/panic" {
		t.Fatalf("bundle reason=%q details=%v", b.Reason, b.Details)
	}
	if !strings.Contains(b.Details["value"], "flight test panic") {
		t.Fatalf("panic value not attributed: %v", b.Details)
	}
	// The server keeps serving while bundles exist.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d", resp.StatusCode)
	}
}
