package quest

import (
	"net/http"
	"strings"

	"repro/internal/obs/reqlog"
)

// Live recommendation API over the sharded serving tier (internal/shard):
//
//	GET /api/recommend?part=P42&features=f1,f2,f3
//
// Unlike /api/bundle/{ref}, which reads recommendations persisted by the
// batch pipeline, this endpoint classifies on demand — fanned out across
// the shard router with hedging, per-shard breakers, and graceful
// degradation. The response envelope threads the degradation contract to
// the client: `degraded` plus `failed_shards` mean the ranking came from
// the surviving shards only.

type apiRecommendation struct {
	Part         string          `json:"part"`
	Codes        []apiSuggestion `json:"codes"`
	Degraded     bool            `json:"degraded"`
	FailedShards []int           `json:"failed_shards,omitempty"`
	// Scatter reports the unknown-part fallback: no shard owns the part,
	// so every shard ranked its whole partition (§4.3's all-nodes path).
	Scatter bool `json:"scatter"`
	// Hedged reports that at least one sub-query was answered by a hedged
	// second attempt.
	Hedged bool `json:"hedged"`
	// Replica reports that at least one sub-answer was served by a
	// WAL-shipped read replica; Stale additionally reports that a
	// contributing replica was beyond the router's apply-lag bound — the
	// ranking is a consistent but possibly outdated prefix of the
	// knowledge base.
	Replica bool `json:"replica,omitempty"`
	Stale   bool `json:"stale,omitempty"`
}

func (s *Server) apiRecommend(w http.ResponseWriter, r *http.Request) {
	if s.shards == nil {
		apiError(w, http.StatusNotFound, "sharded serving not enabled (knowledge base not trained?)")
		return
	}
	q := r.URL.Query()
	part := q.Get("part")
	if part == "" {
		apiError(w, http.StatusBadRequest, "part parameter required")
		return
	}
	// features may repeat or be comma-separated; both forms compose.
	var features []string
	for _, v := range q["features"] {
		for _, f := range strings.Split(v, ",") {
			if f = strings.TrimSpace(f); f != "" {
				features = append(features, f)
			}
		}
	}
	if len(features) == 0 {
		apiError(w, http.StatusBadRequest, "features parameter required")
		return
	}

	// Record the query identity and outcome on the request's wide event
	// (nil-safe; the builder rides the context from Instrument).
	rb := reqlog.From(r.Context())
	rb.Query(part, len(features))
	res, err := s.shards.Query(r.Context(), part, features)
	if err != nil {
		apiError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	rb.Outcome(res.Degraded, res.Hedged, res.Scatter, res.FailedShards)
	rb.ReplicaServed(res.Replica, res.Stale)
	out := apiRecommendation{
		Part: part, Degraded: res.Degraded, FailedShards: res.FailedShards,
		Scatter: res.Scatter, Hedged: res.Hedged,
		Replica: res.Replica, Stale: res.Stale,
		Codes: make([]apiSuggestion, 0, len(res.Codes)),
	}
	limit := len(res.Codes)
	if limit > SuggestionLimit {
		limit = SuggestionLimit
	}
	for i, sc := range res.Codes[:limit] {
		out.Codes = append(out.Codes, apiSuggestion{Rank: i + 1, Code: sc.Code, Score: sc.Score})
	}
	writeJSON(w, http.StatusOK, out)
}
