package quest

import (
	"time"

	"repro/internal/reldb"
)

// Audit trail of final error-code assignments. The paper plans a field
// study of the web UI with quality experts (§6); the audit log is the
// instrumentation for it — who assigned which code to which bundle when,
// and whether the pick came from the suggestion list or the full catalog.

// AuditEntry is one recorded assignment.
type AuditEntry struct {
	RefNo    string
	Code     string
	User     string
	Source   string // "suggestion" or "catalog"
	At       time.Time
	SuggRank int // 1-based rank in the suggestion list, 0 if from catalog
}

// TableAudit is the audit-trail table.
const TableAudit = "quest_audit"

// CreateAuditTables creates the audit schema.
func CreateAuditTables(db *reldb.DB) error {
	if err := db.CreateTable(reldb.Schema{
		Name: TableAudit,
		Columns: []reldb.Column{
			{Name: "id", Type: reldb.TInt},
			{Name: "ref_no", Type: reldb.TString, NotNull: true},
			{Name: "code", Type: reldb.TString, NotNull: true},
			{Name: "user", Type: reldb.TString, NotNull: true},
			{Name: "source", Type: reldb.TString, NotNull: true},
			{Name: "at", Type: reldb.TString, NotNull: true},
			{Name: "sugg_rank", Type: reldb.TInt, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		return err
	}
	return db.CreateIndex(TableAudit, "ix_audit_ref", false, "ref_no")
}

// RecordAssignment appends one audit entry.
func RecordAssignment(db *reldb.DB, e AuditEntry) error {
	_, err := db.Insert(TableAudit, reldb.Row{
		nil, e.RefNo, e.Code, e.User, e.Source,
		e.At.UTC().Format(time.RFC3339), int64(e.SuggRank),
	})
	return err
}

// RecentAssignments returns the latest n audit entries, newest first.
func RecentAssignments(db *reldb.DB, n int) ([]AuditEntry, error) {
	res, err := db.Select(reldb.Query{Table: TableAudit, OrderBy: "id", Desc: true, Limit: n})
	if err != nil {
		return nil, err
	}
	out := make([]AuditEntry, 0, len(res.Rows))
	for _, row := range res.Rows {
		at, _ := time.Parse(time.RFC3339, row[5].(string))
		out = append(out, AuditEntry{
			RefNo: row[1].(string), Code: row[2].(string), User: row[3].(string),
			Source: row[4].(string), At: at, SuggRank: int(row[6].(int64)),
		})
	}
	return out, nil
}

// SuggestionHitRate summarizes the field-study statistic: how many audited
// assignments were made directly from the suggestion list, and the mean
// rank of the picked suggestion.
func SuggestionHitRate(db *reldb.DB) (fromSuggestions, total int, meanRank float64, err error) {
	res, err := db.Select(reldb.Query{Table: TableAudit})
	if err != nil {
		return 0, 0, 0, err
	}
	rankSum := 0
	for _, row := range res.Rows {
		total++
		if row[4].(string) == "suggestion" {
			fromSuggestions++
			rankSum += int(row[6].(int64))
		}
	}
	if fromSuggestions > 0 {
		meanRank = float64(rankSum) / float64(fromSuggestions)
	}
	return fromSuggestions, total, meanRank, nil
}
