package quest

import (
	"bytes"
	"fmt"
	"html/template"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bundle"
	"repro/internal/compare"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
	"repro/internal/reldb"
	"repro/internal/shard"
)

// SuggestionLimit is how many recommendations the assignment screen shows
// first ("the user is first presented with a selection of the 10 most
// likely error codes in descending order of likelihood", §4.5.4).
const SuggestionLimit = 10

// Server is the QUEST web application over a QATK database.
type Server struct {
	db             *reldb.DB
	internal       *compare.Distribution
	public         *compare.Distribution
	comparisonNote string
	shards         *shard.Router
	mux            *http.ServeMux
	handler        http.Handler
	build          obs.BuildIdentity
}

// Config wires a Server.
type Config struct {
	DB *reldb.DB
	// Internal and Public feed the §5.4 comparison screen; either may be
	// nil, disabling it.
	Internal *compare.Distribution
	Public   *compare.Distribution
	// ComparisonNote records why the comparison screen is degraded (shown
	// by /readyz); ignored when both distributions are set.
	ComparisonNote string
	// RequestTimeout bounds each request's handler time (0 = unbounded).
	// Health probes are exempt so a stalled application handler cannot
	// mask the process's liveness.
	RequestTimeout time.Duration
	// Logger receives panic, timeout and lifecycle events (nil = a
	// structured logger on stderr at info level).
	Logger *obs.Logger
	// Metrics receives serving metrics and is exposed at /metrics on the
	// probe mux. Nil disables both.
	Metrics *obs.Registry
	// Tracer records one span per request. Nil disables request tracing.
	Tracer *obs.Tracer
	// Flight is the black-box flight recorder: request latencies feed its
	// SLO sliding window and recovered panics trigger diagnostic bundles.
	// Nil disables flight recording.
	Flight *flight.Recorder
	// Shards is the live recommendation fan-out tier. Nil disables
	// GET /api/recommend and the per-shard readiness section; the
	// batch-persisted suggestion screens keep working either way.
	Shards *shard.Router
	// Requests is the tail-sampled wide-event log: one event per request,
	// assembled along the serving path. Nil disables request logging.
	Requests *reqlog.Log
	// Exemplars attaches OpenMetrics exemplars (trace IDs of retained wide
	// events) to the request latency histogram. Requires Requests.
	Exemplars bool
}

// NewServer builds the application. The database must already contain the
// bundle, recommendation, catalog and user tables.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("quest: nil database")
	}
	s := &Server{
		db: cfg.DB, internal: cfg.Internal, public: cfg.Public,
		comparisonNote: cfg.ComparisonNote, shards: cfg.Shards,
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("/", s.handleBundles)
	s.mux.HandleFunc("/bundle/", s.handleBundle)
	s.mux.HandleFunc("/login", s.handleLogin)
	s.mux.HandleFunc("/logout", s.handleLogout)
	s.mux.HandleFunc("/codes/new", s.handleNewCode)
	s.mux.HandleFunc("/users", s.handleUsers)
	s.mux.HandleFunc("/users/delete", s.handleDeleteUser)
	s.mux.HandleFunc("/compare", s.handleCompare)
	s.mux.HandleFunc("/audit", s.handleAudit)
	s.registerAPI()

	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(os.Stderr, obs.LevelInfo)
	}
	// Resolving the defensive counters up front also pre-registers their
	// families, so a scrape sees them at zero before the first incident.
	// RegisterBuildInfo records the binary identity served by /healthz and
	// the build_info gauge.
	s.build = obs.RegisterBuildInfo(cfg.Metrics)
	panics := cfg.Metrics.Counter(MetricPanicsTotal)
	timeouts := cfg.Metrics.Counter(MetricTimeoutsTotal)

	// Health probes and /metrics bypass the request timeout; everything
	// else runs under timeout + panic recovery. Instrument sits outermost
	// so recovered panics are still counted with their 500.
	probes := http.NewServeMux()
	probes.HandleFunc("/healthz", s.handleHealthz)
	probes.HandleFunc("/readyz", s.handleReadyz)
	if cfg.Metrics != nil {
		probes.Handle("/metrics", cfg.Metrics.Handler())
	}
	probes.Handle("/", WithTimeout(cfg.RequestTimeout, timeouts, logger, s.mux))
	s.handler = Instrument(cfg.Metrics, cfg.Tracer, cfg.Flight, cfg.Requests, cfg.Exemplars,
		Recover(logger, panics, cfg.Flight, probes))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// --- session -------------------------------------------------------------

const sessionCookie = "quest_user"

type viewUser struct {
	Name string
	Role Role
}

// IsAdmin reports extended rights.
func (u *viewUser) IsAdmin() bool { return u != nil && u.Role == RoleAdmin }

// currentUser resolves the logged-in user from the session cookie.
func (s *Server) currentUser(r *http.Request) *viewUser {
	c, err := r.Cookie(sessionCookie)
	if err != nil || c.Value == "" {
		return nil
	}
	u, ok, err := GetUser(s.db, c.Value)
	if err != nil || !ok {
		return nil
	}
	return &viewUser{Name: u.Name, Role: u.Role}
}

// --- rendering -----------------------------------------------------------

type page struct {
	Title string
	User  *viewUser
	Error string
	Body  template.HTML
}

func (s *Server) render(w http.ResponseWriter, r *http.Request, title, bodyName string, data any, errMsg string) {
	var body bytes.Buffer
	if err := bodyTmpls.ExecuteTemplate(&body, bodyName, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	p := page{Title: title, User: s.currentUser(r), Error: errMsg, Body: template.HTML(body.String())}
	if err := pageTmpl.Execute(w, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// --- handlers ------------------------------------------------------------

type bundleRow struct {
	RefNo, PartID, ArticleCode, ErrorCode string
}

// listPageSize is how many bundles one list page shows.
const listPageSize = 50

func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	pendingOnly := q.Get("pending") == "1"
	partFilter := q.Get("part")
	page, _ := strconv.Atoi(q.Get("page"))
	if page < 1 {
		page = 1
	}
	query := reldb.Query{Table: bundle.TableBundles, OrderBy: "ref_no"}
	if partFilter != "" {
		query.Where = []reldb.Cond{reldb.Eq("part_id", partFilter)}
	}
	res, err := s.db.Select(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var rows []bundleRow
	for _, row := range res.Rows {
		br := bundleRow{RefNo: row[1].(string), ArticleCode: row[2].(string), PartID: row[3].(string)}
		if row[4] != nil {
			br.ErrorCode = row[4].(string)
		}
		if pendingOnly && br.ErrorCode != "" {
			continue
		}
		rows = append(rows, br)
	}
	totalPages := (len(rows) + listPageSize - 1) / listPageSize
	if totalPages == 0 {
		totalPages = 1
	}
	if page > totalPages {
		page = totalPages
	}
	lo := (page - 1) * listPageSize
	hi := lo + listPageSize
	if hi > len(rows) {
		hi = len(rows)
	}
	baseQuery := ""
	if pendingOnly {
		baseQuery += "&pending=1"
	}
	if partFilter != "" {
		baseQuery += "&part=" + template.URLQueryEscaper(partFilter)
	}
	s.render(w, r, "Bundles", "bundles", map[string]any{
		"Bundles": rows[lo:hi], "PendingOnly": pendingOnly, "Part": partFilter,
		"Page": page, "TotalPages": totalPages, "Matches": len(rows),
		"PrevPage": page - 1, "NextPage": page + 1, "BaseQuery": baseQuery,
	}, "")
}

func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/bundle/")
	parts := strings.Split(rest, "/")
	ref := parts[0]
	if ref == "" {
		http.NotFound(w, r)
		return
	}
	switch {
	case len(parts) == 1 && r.Method == http.MethodGet:
		s.showBundle(w, r, ref, "")
	case len(parts) == 2 && parts[1] == "assign" && r.Method == http.MethodPost:
		s.assignCode(w, r, ref)
	case len(parts) == 2 && parts[1] == "codes" && r.Method == http.MethodGet:
		s.showAllCodes(w, r, ref)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) showBundle(w http.ResponseWriter, r *http.Request, ref, errMsg string) {
	b, err := bundle.Load(s.db, ref)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	sugg, err := core.LoadRecommendations(s.db, ref, SuggestionLimit)
	if err != nil {
		sugg = nil
	}
	s.render(w, r, "Bundle "+ref, "bundle", map[string]any{
		"Bundle": b, "Suggestions": sugg,
	}, errMsg)
}

func (s *Server) assignCode(w http.ResponseWriter, r *http.Request, ref string) {
	u := s.currentUser(r)
	if u == nil {
		http.Redirect(w, r, "/login", http.StatusSeeOther)
		return
	}
	code := r.FormValue("code")
	if code == "" {
		s.showBundle(w, r, ref, "no error code given")
		return
	}
	if err := bundle.SetErrorCode(s.db, ref, code); err != nil {
		s.showBundle(w, r, ref, err.Error())
		return
	}
	s.audit(ref, code, u.Name)
	http.Redirect(w, r, "/bundle/"+ref, http.StatusSeeOther)
}

// audit records an assignment in the field-study trail (best effort: a
// database without the audit table simply skips it).
func (s *Server) audit(ref, code, user string) {
	entry := AuditEntry{RefNo: ref, Code: code, User: user, Source: "catalog", At: time.Now()}
	if sugg, err := core.LoadRecommendations(s.db, ref, SuggestionLimit); err == nil {
		for i, sc := range sugg {
			if sc.Code == code {
				entry.Source = "suggestion"
				entry.SuggRank = i + 1
				break
			}
		}
	}
	_ = RecordAssignment(s.db, entry)
}

func (s *Server) showAllCodes(w http.ResponseWriter, r *http.Request, ref string) {
	b, err := bundle.Load(s.db, ref)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	codes, err := CodesForPart(s.db, b.PartID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.render(w, r, "Codes for "+b.PartID, "codes", map[string]any{
		"RefNo": ref, "PartID": b.PartID, "Codes": codes,
	}, "")
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		name := r.FormValue("name")
		if _, ok, _ := GetUser(s.db, name); !ok {
			s.render(w, r, "Login", "login", nil, fmt.Sprintf("unknown user %q", name))
			return
		}
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: name, Path: "/", HttpOnly: true})
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	s.render(w, r, "Login", "login", nil, "")
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// requireAdmin enforces extended rights, rendering an error page otherwise.
func (s *Server) requireAdmin(w http.ResponseWriter, r *http.Request) *viewUser {
	u := s.currentUser(r)
	if u == nil {
		http.Redirect(w, r, "/login", http.StatusSeeOther)
		return nil
	}
	if !u.IsAdmin() {
		http.Error(w, "extended rights required", http.StatusForbidden)
		return nil
	}
	return u
}

func (s *Server) handleNewCode(w http.ResponseWriter, r *http.Request) {
	if s.requireAdmin(w, r) == nil {
		return
	}
	if r.Method == http.MethodPost {
		e := CatalogEntry{
			Code:        r.FormValue("code"),
			PartID:      r.FormValue("part_id"),
			Description: r.FormValue("description"),
		}
		if err := AddCode(s.db, e); err != nil {
			s.render(w, r, "New error code", "newcode", nil, err.Error())
			return
		}
		http.Redirect(w, r, "/codes/new", http.StatusSeeOther)
		return
	}
	s.render(w, r, "New error code", "newcode", nil, "")
}

func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	if s.requireAdmin(w, r) == nil {
		return
	}
	var errMsg string
	if r.Method == http.MethodPost {
		if _, err := AddUser(s.db, r.FormValue("name"), Role(r.FormValue("role"))); err != nil {
			errMsg = err.Error()
		}
	}
	users, err := ListUsers(s.db)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.render(w, r, "Users", "users", map[string]any{"Users": users}, errMsg)
}

func (s *Server) handleDeleteUser(w http.ResponseWriter, r *http.Request) {
	u := s.requireAdmin(w, r)
	if u == nil {
		return
	}
	name := r.FormValue("name")
	if name == u.Name {
		http.Error(w, "cannot delete yourself", http.StatusBadRequest)
		return
	}
	if err := DeleteUser(s.db, name); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Redirect(w, r, "/users", http.StatusSeeOther)
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.requireAdmin(w, r) == nil {
		return
	}
	entries, err := RecentAssignments(s.db, 100)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fromSugg, total, meanRank, err := SuggestionHitRate(s.db)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.render(w, r, "Audit", "audit", map[string]any{
		"Entries": entries, "FromSuggestions": fromSugg, "Total": total,
		"MeanRank": fmt.Sprintf("%.2f", meanRank),
	}, "")
}

type compareRow struct {
	LCode, LShare, RCode, RShare string
}

// pieGradient builds a CSS conic-gradient rendering the top shares as a
// pie chart (the Fig. 14 visualization, without any client-side code).
func pieGradient(shares []compare.Share) template.CSS {
	colors := []string{"#3b6ea5", "#74a57f", "#d9a05b", "#b0b7bf"}
	var b strings.Builder
	b.WriteString("conic-gradient(")
	angle := 0.0
	for i, s := range shares {
		next := angle + 360*s.Fraction
		if i == len(shares)-1 {
			next = 360
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.1fdeg %.1fdeg", colors[i%len(colors)], angle, next)
		angle = next
	}
	b.WriteString(")")
	return template.CSS(b.String())
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.internal == nil || s.public == nil {
		http.Error(w, "comparison data not loaded", http.StatusNotFound)
		return
	}
	// Side-by-side pie-chart data: the n most frequent codes per source
	// (Fig. 14 shows n = 3 plus "other").
	ti, tp := s.internal.Top(3), s.public.Top(3)
	rows := make([]compareRow, 0, 4)
	n := len(ti)
	if len(tp) > n {
		n = len(tp)
	}
	for i := 0; i < n; i++ {
		var row compareRow
		if i < len(ti) {
			row.LCode = ti[i].Code
			row.LShare = fmt.Sprintf("%.1f%%", 100*ti[i].Fraction)
		}
		if i < len(tp) {
			row.RCode = tp[i].Code
			row.RShare = fmt.Sprintf("%.1f%%", 100*tp[i].Fraction)
		}
		rows = append(rows, row)
	}
	s.render(w, r, "Data comparison", "compare", map[string]any{
		"Internal": s.internal, "Public": s.public, "Rows": rows,
		"LeftPie": pieGradient(ti), "RightPie": pieGradient(tp),
	}, "")
}
