package quest

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/reqlog"
)

// HTTP hardening for the QUEST serving tier: the quality experts' web UI
// must stay up through handler bugs and slow requests — one panicking or
// stalled handler cannot be allowed to take the field-study deployment
// (§5.3) down with it. Every defensive event is observable: panics and
// timeouts surface as counters and structured log lines, and Instrument
// gives every request a trace span plus the RED metrics (rate, errors,
// duration).

// spanHTTPRequest names the per-request trace span.
const spanHTTPRequest = "http.request"

// Recover wraps a handler so that panics return 500 to the client and are
// logged with a stack trace instead of killing the serving process; each
// absorbed panic also increments panics (quest_panics_total) when non-nil.
// A recovered panic is a hard anomaly: the flight recorder (nil = off)
// captures a diagnostic bundle with the panic value and request identity.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and is handled by the http server itself.
func Recover(logger *obs.Logger, panics *obs.Counter, fr *flight.Recorder, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			//lint:ignore qatklint/paniccontract the HTTP serving tier is its own recovery boundary, mirroring the pipeline's: a handler panic must not kill the deployment
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				//lint:ignore qatklint/paniccontract http.ErrAbortHandler must be re-raised; net/http itself recovers it as the sanctioned abort path
				panic(rec)
			}
			panics.Inc()
			// A recovered panic is a hard retention reason for the request's
			// wide event (nil-safe when request logging is off).
			reqlog.From(r.Context()).SetPanic(fmt.Sprint(rec))
			logger.Error("panic serving request",
				obs.L("method", r.Method),
				obs.L("path", r.URL.Path),
				obs.L("panic", fmt.Sprint(rec)),
				obs.L("stack", string(debug.Stack())))
			fr.Trigger(flight.ReasonPanic,
				obs.L("method", r.Method),
				obs.L("path", r.URL.Path),
				obs.L("value", fmt.Sprint(rec)))
			// The handler may already have written a partial response; the
			// extra WriteHeader is then a no-op and the client sees a torn
			// body, which is the best that can be done at this point.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// WithTimeout bounds every request's handler time, answering 503 when it is
// exceeded. Each exceeded budget increments timeouts (quest_timeouts_total)
// and logs the request path. d <= 0 disables the bound.
func WithTimeout(d time.Duration, timeouts *obs.Counter, logger *obs.Logger, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	// The watcher runs inside the TimeoutHandler goroutine: when the inner
	// handler returns after its context deadline fired, the 503 has already
	// been (or is being) written by TimeoutHandler — record why.
	watched := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			timeouts.Inc()
			logger.Warn("request timed out",
				obs.L("method", r.Method),
				obs.L("path", r.URL.Path),
				obs.L("budget", d.String()))
		}
	})
	return http.TimeoutHandler(watched, d, "request timed out")
}

// statusRecorder captures the first status code written to a response.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the first explicit status.
func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

// Write records the implicit 200 of a body written without WriteHeader.
func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working behind Instrument.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.NewResponseController, which
// restores Hijack/SetDeadline support the embedding alone would hide.
func (sr *statusRecorder) Unwrap() http.ResponseWriter {
	return sr.ResponseWriter
}

// Instrument wraps a handler with request observability: a trace span per
// request (method, path, status attributes), a request counter by status
// code, a latency histogram, and an in-flight gauge. Each request's
// latency also feeds the flight recorder's SLO sliding window (nil = off).
// It sits outermost in the chain so that panics recovered further in are
// still counted with their 500. Nil registry and tracer disable the
// respective signal.
//
// rl (nil = off) opens one wide event per request and carries its builder
// on the request context for the layers below to fill in; the event is
// sealed here with the status, trace ID and total latency. When an event
// is retained and exemplars is set, the latency histogram bucket gains an
// OpenMetrics exemplar carrying the event's trace ID — so a scrape links
// a tail bucket to a concrete request in /debug/requests.
func Instrument(reg *obs.Registry, tr *obs.Tracer, fr *flight.Recorder, rl *reqlog.Log, exemplars bool, next http.Handler) http.Handler {
	inflight := reg.Gauge(MetricHTTPRequestsInflight)
	duration := reg.Histogram(MetricHTTPRequestDurationSeconds, obs.DefBuckets)
	// Pre-touch the one series every deployment serves, so the family
	// renders on a scrape that precedes the first completed request.
	reg.Counter(MetricHTTPRequestsTotal, obs.L("code", "200"))
	exemplarCount := reg.Counter(MetricReqExemplarsTotal)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		span := tr.Start(nil, spanHTTPRequest,
			obs.L("method", r.Method), obs.L("path", r.URL.Path))
		b := rl.Begin(r.Method, r.URL.Path)
		if b != nil {
			r = r.WithContext(reqlog.NewContext(r.Context(), b))
		}
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			code := strconv.Itoa(rec.status)
			inflight.Add(-1)
			elapsed := time.Since(start)
			duration.Observe(elapsed.Seconds())
			fr.ObserveLatency(elapsed)
			reg.Counter(MetricHTTPRequestsTotal, obs.L("code", code)).Inc()
			span.SetAttr("code", code)
			span.End(nil)
			if b.Finish(rec.status, span.TraceID(), elapsed) && exemplars {
				duration.Exemplar(elapsed.Seconds(), reqlog.TraceIDString(span.TraceID()), start.Add(elapsed))
				exemplarCount.Inc()
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
