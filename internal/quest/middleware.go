package quest

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// HTTP hardening for the QUEST serving tier: the quality experts' web UI
// must stay up through handler bugs and slow requests — one panicking or
// stalled handler cannot be allowed to take the field-study deployment
// (§5.3) down with it.

// Recover wraps a handler so that panics return 500 to the client and are
// logged with a stack trace instead of killing the serving process.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and is handled by the http server itself.
func Recover(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			//lint:ignore qatklint/paniccontract the HTTP serving tier is its own recovery boundary, mirroring the pipeline's: a handler panic must not kill the deployment
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				//lint:ignore qatklint/paniccontract http.ErrAbortHandler must be re-raised; net/http itself recovers it as the sanctioned abort path
				panic(rec)
			}
			if logger != nil {
				logger.Printf("quest: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			}
			// The handler may already have written a partial response; the
			// extra WriteHeader is then a no-op and the client sees a torn
			// body, which is the best that can be done at this point.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// WithTimeout bounds every request's handler time, answering 503 when it is
// exceeded. d <= 0 disables the bound.
func WithTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.TimeoutHandler(next, d, "request timed out")
}
