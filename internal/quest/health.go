package quest

import (
	"net/http"

	"repro/internal/bundle"
)

// Liveness and readiness probes. /healthz answers 200 whenever the process
// can serve requests at all; /readyz additionally checks that the database
// answers queries and reports whether the §5.4 comparison screen is loaded
// or running degraded (the screen itself degrades gracefully when the ODI
// complaint data is absent — readiness reports that state rather than
// hiding it).

type readiness struct {
	Status     string `json:"status"`     // "ok" | "unavailable"
	DB         string `json:"db"`         // "ok" | the failing query's error
	Comparison string `json:"comparison"` // "loaded" | "degraded[: reason]"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := readiness{Status: "ok", DB: "ok", Comparison: "loaded"}
	status := http.StatusOK
	if _, err := s.db.Count(bundle.TableBundles); err != nil {
		rd.Status, rd.DB = "unavailable", err.Error()
		status = http.StatusServiceUnavailable
	}
	if s.internal == nil || s.public == nil {
		rd.Comparison = "degraded"
		if s.comparisonNote != "" {
			rd.Comparison += ": " + s.comparisonNote
		}
	}
	writeJSON(w, status, rd)
}
