package quest

import (
	"net/http"

	"repro/internal/bundle"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Liveness and readiness probes. /healthz answers 200 whenever the process
// can serve requests at all and identifies the build doing the answering;
// /readyz additionally checks that the database answers queries and reports
// whether the §5.4 comparison screen is loaded or running degraded (the
// screen itself degrades gracefully when the ODI complaint data is absent —
// readiness reports that state rather than hiding it).

type liveness struct {
	Status string            `json:"status"` // always "ok" when answered
	Build  obs.BuildIdentity `json:"build"`  // which binary is serving
}

type readiness struct {
	Status     string `json:"status"`     // "ok" | "unavailable"
	DB         string `json:"db"`         // "ok" | the failing query's error
	Comparison string `json:"comparison"` // "loaded" | "degraded[: reason]"
	// Serving reports the sharded recommendation tier: "ok" when every
	// breaker is closed, "degraded" when any shard is broken (the tier
	// still answers from survivors, so degradation does not flip Status),
	// omitted when sharded serving is disabled.
	Serving string `json:"serving,omitempty"`
	// Shards lists each shard's breaker state, node count and last error.
	Shards []shard.ShardHealth `json:"shards,omitempty"`
	// Replicas lists each WAL-shipped read replica's apply position:
	// last_applied_generation, apply_lag_seconds, and whether it is beyond
	// the router's staleness bound. A stale replica still serves rescues
	// (flagged), so staleness does not flip Status.
	Replicas []shard.ReplicaHealth `json:"replicas,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, liveness{Status: "ok", Build: s.build})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := readiness{Status: "ok", DB: "ok", Comparison: "loaded"}
	status := http.StatusOK
	if _, err := s.db.Count(bundle.TableBundles); err != nil {
		rd.Status, rd.DB = "unavailable", err.Error()
		status = http.StatusServiceUnavailable
	}
	if s.internal == nil || s.public == nil {
		rd.Comparison = "degraded"
		if s.comparisonNote != "" {
			rd.Comparison += ": " + s.comparisonNote
		}
	}
	if s.shards != nil {
		rd.Serving = "ok"
		if s.shards.Degraded() {
			rd.Serving = "degraded"
		}
		rd.Shards = s.shards.Health()
		rd.Replicas = s.shards.ReplicaHealth()
	}
	writeJSON(w, status, rd)
}
