package quest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/reldb"
	"repro/internal/shard"
)

// Satellite: /readyz per-shard health and the /api/recommend envelope over
// a live shard router.

// shardKB synthesizes a deterministic knowledge base for the router.
func shardKB(t *testing.T) *kb.Memory {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	m := kb.NewMemory()
	for i := 0; i < 200; i++ {
		part := fmt.Sprintf("P%02d", rng.Intn(12))
		code := fmt.Sprintf("E%02d", rng.Intn(9))
		n := 3 + rng.Intn(4)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(30))] = true
		}
		feats := make([]string, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		m.AddBundle(part, code, feats)
	}
	return m
}

// shardedServer stands up a QUEST instance with a 4-shard router, the
// given fault hook wired in.
func shardedServer(t *testing.T, hook shard.FaultHook) (*httptest.Server, *kb.Memory, *shard.Router) {
	t.Helper()
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	src := shardKB(t)
	router, err := shard.New(shard.Config{
		Stores: shard.PartitionStores(src, 4),
		Hook:   hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv, err := NewServer(Config{DB: db, Shards: router})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, src, router
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestReadyzReportsShards(t *testing.T) {
	ts, _, _ := shardedServer(t, nil)
	var rd struct {
		Status  string              `json:"status"`
		Serving string              `json:"serving"`
		Shards  []shard.ShardHealth `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if rd.Status != "ok" || rd.Serving != "ok" {
		t.Fatalf("status=%q serving=%q, want ok/ok", rd.Status, rd.Serving)
	}
	if len(rd.Shards) != 4 {
		t.Fatalf("shards = %d entries, want 4", len(rd.Shards))
	}
	for i, h := range rd.Shards {
		if h.ID != i || h.State != shard.StateClosed || h.LastError != "" {
			t.Errorf("shard %d health = %+v, want closed and error-free", i, h)
		}
	}
}

func TestReadyzReportsBrokenShard(t *testing.T) {
	// Every sub-query to shard 2 fails; querying its parts until the
	// breaker budget is exhausted must surface through /readyz: serving
	// "degraded", shard 2 open with its last error.
	ts, src, router := shardedServer(t, faults.ShardHook(map[int]faults.ShardFault{
		2: {Mode: faults.ShardError},
	}))
	victimParts := []string{}
	for p := 0; p < 12; p++ {
		part := fmt.Sprintf("P%02d", p)
		if src.KnownPart(part) && kb.PartOwner(part, 4) == 2 {
			victimParts = append(victimParts, part)
		}
	}
	if len(victimParts) == 0 {
		t.Fatal("fixture has no parts owned by shard 2")
	}
	for i := 0; i < shard.DefaultBreakerBudget; i++ {
		var out apiRecommendation
		u := ts.URL + "/api/recommend?part=" + url.QueryEscape(victimParts[0]) + "&features=f01,f02,f03"
		if code := getJSON(t, u, &out); code != http.StatusOK {
			t.Fatalf("recommend %d = %d, want 200 (degraded, not failed)", i, code)
		}
		if !out.Degraded {
			t.Fatalf("recommend %d not degraded with owner erroring", i)
		}
	}
	if !router.Degraded() {
		t.Fatal("router not degraded after breaker budget")
	}

	var rd struct {
		Status  string              `json:"status"`
		Serving string              `json:"serving"`
		Shards  []shard.ShardHealth `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (degraded serving stays ready)", code)
	}
	if rd.Status != "ok" || rd.Serving != "degraded" {
		t.Fatalf("status=%q serving=%q, want ok/degraded", rd.Status, rd.Serving)
	}
	if rd.Shards[2].State != shard.StateOpen {
		t.Errorf("shard 2 state = %q, want open", rd.Shards[2].State)
	}
	if rd.Shards[2].LastError == "" {
		t.Error("shard 2 last_error empty, want the injected error")
	}
}

func TestAPIRecommend(t *testing.T) {
	ts, src, _ := shardedServer(t, nil)
	part := "P03"
	if !src.KnownPart(part) {
		t.Fatalf("fixture part %s unknown", part)
	}
	feats := []string{"f01", "f05", "f11"}

	var out apiRecommendation
	u := ts.URL + "/api/recommend?part=" + part + "&features=f01,f05&features=f11"
	if code := getJSON(t, u, &out); code != http.StatusOK {
		t.Fatalf("recommend = %d, want 200", code)
	}
	if out.Degraded || out.Scatter {
		t.Fatalf("degraded=%v scatter=%v, want false/false", out.Degraded, out.Scatter)
	}
	want := core.New(src, core.Jaccard{}).Recommend(part, feats)
	limit := len(want)
	if limit > SuggestionLimit {
		limit = SuggestionLimit
	}
	if len(out.Codes) != limit {
		t.Fatalf("codes = %d entries, want %d", len(out.Codes), limit)
	}
	for i, c := range out.Codes {
		if c.Code != want[i].Code || c.Rank != i+1 {
			t.Errorf("rank %d: got %s, want %s", i+1, c.Code, want[i].Code)
		}
	}

	// Unknown part: the scatter fallback, still a 200 envelope.
	if code := getJSON(t, ts.URL+"/api/recommend?part=PXX&features=f01", &out); code != http.StatusOK {
		t.Fatalf("scatter recommend = %d, want 200", code)
	}
	if !out.Scatter || out.Degraded {
		t.Fatalf("scatter=%v degraded=%v, want true/false", out.Scatter, out.Degraded)
	}

	// Parameter validation.
	resp, err := http.Get(ts.URL + "/api/recommend?features=f01")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing part = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/recommend?part=P03")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing features = %d, want 400", resp.StatusCode)
	}
}

func TestAPIRecommendDisabled(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/api/recommend?part=P1&features=f1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("recommend without router = %d, want 404", resp.StatusCode)
	}
	// And /readyz omits the shards section entirely.
	var rd map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if _, ok := rd["shards"]; ok {
		t.Error("/readyz reports shards without a router")
	}
	if _, ok := rd["serving"]; ok {
		t.Error("/readyz reports serving without a router")
	}
}

// TestReadyzBreakerArc drives one shard's breaker through its full
// recovery arc — closed → open → half-open probe → closed — entirely over
// HTTP, asserting each state through /readyz. The router runs on an
// injectable clock so the cooldown elapses deterministically, and the
// fault hook heals on command so the half-open probe succeeds.
func TestReadyzBreakerArc(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	var failing atomic.Bool
	failing.Store(true)
	hook := func(ctx context.Context, sh, attempt int) error {
		if sh == 2 && failing.Load() {
			return errors.New("injected: shard 2 down")
		}
		return nil
	}

	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	src := shardKB(t)
	cooldown := time.Second
	router, err := shard.New(shard.Config{
		Stores:          shard.PartitionStores(src, 4),
		Hook:            hook,
		BreakerBudget:   1,
		BreakerCooldown: cooldown,
		Clock:           clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv, err := NewServer(Config{DB: db, Shards: router})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var victim string
	for p := 0; p < 12; p++ {
		part := fmt.Sprintf("P%02d", p)
		if src.KnownPart(part) && kb.PartOwner(part, 4) == 2 {
			victim = part
			break
		}
	}
	if victim == "" {
		t.Fatal("fixture has no parts owned by shard 2")
	}

	shardState := func() (serving, state string) {
		t.Helper()
		var rd struct {
			Serving string              `json:"serving"`
			Shards  []shard.ShardHealth `json:"shards"`
		}
		if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
			t.Fatalf("/readyz = %d, want 200", code)
		}
		if len(rd.Shards) != 4 {
			t.Fatalf("shards = %d entries, want 4", len(rd.Shards))
		}
		return rd.Serving, rd.Shards[2].State
	}
	recommend := func() apiRecommendation {
		t.Helper()
		var out apiRecommendation
		u := ts.URL + "/api/recommend?part=" + url.QueryEscape(victim) + "&features=f01,f02,f03"
		if code := getJSON(t, u, &out); code != http.StatusOK {
			t.Fatalf("recommend = %d, want 200", code)
		}
		return out
	}

	// 1. Closed: healthy report before any traffic.
	if serving, state := shardState(); serving != "ok" || state != shard.StateClosed {
		t.Fatalf("initial serving=%q shard2=%q, want ok/closed", serving, state)
	}

	// 2. One failed sub-query exhausts the budget of 1: closed → open.
	if out := recommend(); !out.Degraded {
		t.Fatal("query against downed owner not degraded")
	}
	if serving, state := shardState(); serving != "degraded" || state != shard.StateOpen {
		t.Fatalf("post-trip serving=%q shard2=%q, want degraded/open", serving, state)
	}

	// 3. Cooldown elapses on the injected clock: /readyz resolves the
	// breaker as half-open (what Allow would grant next) without traffic.
	advance(cooldown)
	if _, state := shardState(); state != shard.StateHalfOpen {
		t.Fatalf("post-cooldown shard2=%q, want half-open", state)
	}

	// 4. Shard heals; the next query is the half-open probe and closes
	// the breaker: half-open → closed, response no longer degraded.
	failing.Store(false)
	if out := recommend(); out.Degraded {
		t.Fatal("probe query still degraded after shard healed")
	}
	if serving, state := shardState(); serving != "ok" || state != shard.StateClosed {
		t.Fatalf("recovered serving=%q shard2=%q, want ok/closed", serving, state)
	}

	// And the re-open branch: a failed probe sends half-open back to open.
	failing.Store(true)
	if out := recommend(); !out.Degraded {
		t.Fatal("query against re-downed owner not degraded")
	}
	advance(cooldown)
	if _, state := shardState(); state != shard.StateHalfOpen {
		t.Fatalf("second cooldown shard2=%q, want half-open", state)
	}
	if out := recommend(); !out.Degraded {
		t.Fatal("failed probe should leave the response degraded")
	}
	if _, state := shardState(); state != shard.StateOpen {
		t.Fatalf("after failed probe shard2=%q, want open (re-opened)", state)
	}
}

// fakeReplicaTarget is a settable shard.ReplicaTarget serving the full
// knowledge base — enough to drive /readyz's replica section and the
// router's rescue path without a live replication link.
type fakeReplicaTarget struct {
	id    string
	store kb.Store

	mu  sync.Mutex
	lag time.Duration
	gen uint64
}

func (f *fakeReplicaTarget) ID() string      { return f.id }
func (f *fakeReplicaTarget) Ready() bool     { return f.store != nil }
func (f *fakeReplicaTarget) Store() kb.Store { return f.store }
func (f *fakeReplicaTarget) ApplyLag() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lag
}
func (f *fakeReplicaTarget) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}
func (f *fakeReplicaTarget) setLag(d time.Duration) {
	f.mu.Lock()
	f.lag = d
	f.mu.Unlock()
}

// TestReadyzReplicaSection covers the /readyz replica section and the
// breaker arc it coexists with: a fresh and a lagging replica are both
// reported with their apply positions and staleness verdicts; a downed
// owner shard is rescued by the fresh replica (envelope replica:true,
// stale:false) while its breaker walks closed → open → half-open on the
// injected clock; with only stale replicas left the rescue is flagged
// stale:true; and healing the shard closes the breaker again.
func TestReadyzReplicaSection(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	var failing atomic.Bool
	failing.Store(true)
	hook := func(ctx context.Context, sh, attempt int) error {
		if sh == 2 && failing.Load() {
			return errors.New("injected: shard 2 down")
		}
		return nil
	}

	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	src := shardKB(t)
	fresh := &fakeReplicaTarget{id: "r0", store: src, lag: time.Millisecond, gen: 3}
	stale := &fakeReplicaTarget{id: "r1", store: src, lag: 10 * time.Second, gen: 2}
	cooldown := time.Second
	router, err := shard.New(shard.Config{
		Stores:          shard.PartitionStores(src, 4),
		Hook:            hook,
		BreakerBudget:   1,
		BreakerCooldown: cooldown,
		Clock:           clock,
		Replicas:        []shard.ReplicaTarget{fresh, stale},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv, err := NewServer(Config{DB: db, Shards: router})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var victim string
	for p := 0; p < 12; p++ {
		part := fmt.Sprintf("P%02d", p)
		if src.KnownPart(part) && kb.PartOwner(part, 4) == 2 {
			victim = part
			break
		}
	}
	if victim == "" {
		t.Fatal("fixture has no parts owned by shard 2")
	}

	type readyzView struct {
		Serving  string                `json:"serving"`
		Shards   []shard.ShardHealth   `json:"shards"`
		Replicas []shard.ReplicaHealth `json:"replicas"`
	}
	readyz := func() readyzView {
		t.Helper()
		var rd readyzView
		if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
			t.Fatalf("/readyz = %d, want 200", code)
		}
		return rd
	}
	recommend := func() apiRecommendation {
		t.Helper()
		var out apiRecommendation
		u := ts.URL + "/api/recommend?part=" + url.QueryEscape(victim) + "&features=f01,f02,f03"
		if code := getJSON(t, u, &out); code != http.StatusOK {
			t.Fatalf("recommend = %d, want 200", code)
		}
		return out
	}

	// 1. Closed, and the replica section reports both apply positions.
	rd := readyz()
	if rd.Serving != "ok" || rd.Shards[2].State != shard.StateClosed {
		t.Fatalf("initial serving=%q shard2=%q, want ok/closed", rd.Serving, rd.Shards[2].State)
	}
	if len(rd.Replicas) != 2 {
		t.Fatalf("replicas = %d entries, want 2", len(rd.Replicas))
	}
	r0, r1 := rd.Replicas[0], rd.Replicas[1]
	if r0.ID != "r0" || !r0.Ready || r0.Stale || r0.LastAppliedGeneration != 3 {
		t.Fatalf("fresh replica health = %+v, want ready, non-stale, gen 3", r0)
	}
	if r0.ApplyLagSeconds <= 0 || r0.ApplyLagSeconds > 0.5 {
		t.Fatalf("fresh replica apply_lag_seconds = %v, want ~0.001", r0.ApplyLagSeconds)
	}
	if r1.ID != "r1" || !r1.Stale || r1.LastAppliedGeneration != 2 {
		t.Fatalf("lagging replica health = %+v, want stale, gen 2", r1)
	}

	// 2. The downed owner is rescued by the fresh replica: not degraded,
	// replica:true stale:false — but the primary failure still trips the
	// budget-1 breaker: closed → open.
	out := recommend()
	if out.Degraded || !out.Replica || out.Stale {
		t.Fatalf("rescued envelope degraded=%v replica=%v stale=%v, want false/true/false",
			out.Degraded, out.Replica, out.Stale)
	}
	rd = readyz()
	if rd.Serving != "degraded" || rd.Shards[2].State != shard.StateOpen {
		t.Fatalf("post-trip serving=%q shard2=%q, want degraded/open", rd.Serving, rd.Shards[2].State)
	}
	if len(rd.Replicas) != 2 {
		t.Fatalf("replica section lost while degraded: %d entries", len(rd.Replicas))
	}

	// 3. Cooldown elapses on the injected clock: half-open, no traffic.
	advance(cooldown)
	if rd = readyz(); rd.Shards[2].State != shard.StateHalfOpen {
		t.Fatalf("post-cooldown shard2=%q, want half-open", rd.Shards[2].State)
	}

	// 4. The fresh replica falls behind too: the failed half-open probe is
	// rescued by a stale replica, flagged in the envelope.
	fresh.setLag(10 * time.Second)
	out = recommend()
	if out.Degraded || !out.Replica || !out.Stale {
		t.Fatalf("stale rescue envelope degraded=%v replica=%v stale=%v, want false/true/true",
			out.Degraded, out.Replica, out.Stale)
	}
	if rd = readyz(); rd.Replicas[0].Stale != true {
		t.Fatalf("replica r0 not reported stale after lag grew: %+v", rd.Replicas[0])
	}

	// 5. Shard heals; the next half-open probe closes the breaker and the
	// answer comes from the primary again.
	failing.Store(false)
	advance(cooldown)
	out = recommend()
	if out.Degraded || out.Replica || out.Stale {
		t.Fatalf("healed envelope degraded=%v replica=%v stale=%v, want all false",
			out.Degraded, out.Replica, out.Stale)
	}
	rd = readyz()
	if rd.Serving != "ok" || rd.Shards[2].State != shard.StateClosed {
		t.Fatalf("recovered serving=%q shard2=%q, want ok/closed", rd.Serving, rd.Shards[2].State)
	}
}
