package quest

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/kb"
	"repro/internal/reldb"
	"repro/internal/shard"
)

// Satellite: /readyz per-shard health and the /api/recommend envelope over
// a live shard router.

// shardKB synthesizes a deterministic knowledge base for the router.
func shardKB(t *testing.T) *kb.Memory {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	m := kb.NewMemory()
	for i := 0; i < 200; i++ {
		part := fmt.Sprintf("P%02d", rng.Intn(12))
		code := fmt.Sprintf("E%02d", rng.Intn(9))
		n := 3 + rng.Intn(4)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("f%02d", rng.Intn(30))] = true
		}
		feats := make([]string, 0, len(set))
		for f := range set {
			feats = append(feats, f)
		}
		sort.Strings(feats)
		m.AddBundle(part, code, feats)
	}
	return m
}

// shardedServer stands up a QUEST instance with a 4-shard router, the
// given fault hook wired in.
func shardedServer(t *testing.T, hook shard.FaultHook) (*httptest.Server, *kb.Memory, *shard.Router) {
	t.Helper()
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	src := shardKB(t)
	router, err := shard.New(shard.Config{
		Stores: shard.PartitionStores(src, 4),
		Hook:   hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv, err := NewServer(Config{DB: db, Shards: router})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, src, router
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestReadyzReportsShards(t *testing.T) {
	ts, _, _ := shardedServer(t, nil)
	var rd struct {
		Status  string              `json:"status"`
		Serving string              `json:"serving"`
		Shards  []shard.ShardHealth `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if rd.Status != "ok" || rd.Serving != "ok" {
		t.Fatalf("status=%q serving=%q, want ok/ok", rd.Status, rd.Serving)
	}
	if len(rd.Shards) != 4 {
		t.Fatalf("shards = %d entries, want 4", len(rd.Shards))
	}
	for i, h := range rd.Shards {
		if h.ID != i || h.State != shard.StateClosed || h.LastError != "" {
			t.Errorf("shard %d health = %+v, want closed and error-free", i, h)
		}
	}
}

func TestReadyzReportsBrokenShard(t *testing.T) {
	// Every sub-query to shard 2 fails; querying its parts until the
	// breaker budget is exhausted must surface through /readyz: serving
	// "degraded", shard 2 open with its last error.
	ts, src, router := shardedServer(t, faults.ShardHook(map[int]faults.ShardFault{
		2: {Mode: faults.ShardError},
	}))
	victimParts := []string{}
	for p := 0; p < 12; p++ {
		part := fmt.Sprintf("P%02d", p)
		if src.KnownPart(part) && kb.PartOwner(part, 4) == 2 {
			victimParts = append(victimParts, part)
		}
	}
	if len(victimParts) == 0 {
		t.Fatal("fixture has no parts owned by shard 2")
	}
	for i := 0; i < shard.DefaultBreakerBudget; i++ {
		var out apiRecommendation
		u := ts.URL + "/api/recommend?part=" + url.QueryEscape(victimParts[0]) + "&features=f01,f02,f03"
		if code := getJSON(t, u, &out); code != http.StatusOK {
			t.Fatalf("recommend %d = %d, want 200 (degraded, not failed)", i, code)
		}
		if !out.Degraded {
			t.Fatalf("recommend %d not degraded with owner erroring", i)
		}
	}
	if !router.Degraded() {
		t.Fatal("router not degraded after breaker budget")
	}

	var rd struct {
		Status  string              `json:"status"`
		Serving string              `json:"serving"`
		Shards  []shard.ShardHealth `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (degraded serving stays ready)", code)
	}
	if rd.Status != "ok" || rd.Serving != "degraded" {
		t.Fatalf("status=%q serving=%q, want ok/degraded", rd.Status, rd.Serving)
	}
	if rd.Shards[2].State != shard.StateOpen {
		t.Errorf("shard 2 state = %q, want open", rd.Shards[2].State)
	}
	if rd.Shards[2].LastError == "" {
		t.Error("shard 2 last_error empty, want the injected error")
	}
}

func TestAPIRecommend(t *testing.T) {
	ts, src, _ := shardedServer(t, nil)
	part := "P03"
	if !src.KnownPart(part) {
		t.Fatalf("fixture part %s unknown", part)
	}
	feats := []string{"f01", "f05", "f11"}

	var out apiRecommendation
	u := ts.URL + "/api/recommend?part=" + part + "&features=f01,f05&features=f11"
	if code := getJSON(t, u, &out); code != http.StatusOK {
		t.Fatalf("recommend = %d, want 200", code)
	}
	if out.Degraded || out.Scatter {
		t.Fatalf("degraded=%v scatter=%v, want false/false", out.Degraded, out.Scatter)
	}
	want := core.New(src, core.Jaccard{}).Recommend(part, feats)
	limit := len(want)
	if limit > SuggestionLimit {
		limit = SuggestionLimit
	}
	if len(out.Codes) != limit {
		t.Fatalf("codes = %d entries, want %d", len(out.Codes), limit)
	}
	for i, c := range out.Codes {
		if c.Code != want[i].Code || c.Rank != i+1 {
			t.Errorf("rank %d: got %s, want %s", i+1, c.Code, want[i].Code)
		}
	}

	// Unknown part: the scatter fallback, still a 200 envelope.
	if code := getJSON(t, ts.URL+"/api/recommend?part=PXX&features=f01", &out); code != http.StatusOK {
		t.Fatalf("scatter recommend = %d, want 200", code)
	}
	if !out.Scatter || out.Degraded {
		t.Fatalf("scatter=%v degraded=%v, want true/false", out.Scatter, out.Degraded)
	}

	// Parameter validation.
	resp, err := http.Get(ts.URL + "/api/recommend?features=f01")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing part = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/recommend?part=P03")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing features = %d, want 400", resp.StatusCode)
	}
}

func TestAPIRecommendDisabled(t *testing.T) {
	db, err := reldb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := bundle.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/api/recommend?part=P1&features=f1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("recommend without router = %d, want 404", resp.StatusCode)
	}
	// And /readyz omits the shards section entirely.
	var rd map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &rd); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if _, ok := rd["shards"]; ok {
		t.Error("/readyz reports shards without a router")
	}
	if _, ok := rd["serving"]; ok {
		t.Error("/readyz reports serving without a router")
	}
}
