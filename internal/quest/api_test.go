package quest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bundle"
)

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestAPIBundleList(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	resp, err := c.Get(ts.URL + "/api/bundles")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	decodeJSON(t, resp, &list)
	if len(list) != 1 || list[0]["ref_no"] != "R001" || list[0]["part_id"] != "P1" {
		t.Fatalf("list = %v", list)
	}
}

func TestAPIBundleDetail(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	resp, err := c.Get(ts.URL + "/api/bundle/R001")
	if err != nil {
		t.Fatal(err)
	}
	var b struct {
		RefNo       string            `json:"ref_no"`
		Reports     map[string]string `json:"reports"`
		Suggestions []struct {
			Rank  int     `json:"rank"`
			Code  string  `json:"code"`
			Score float64 `json:"score"`
		} `json:"suggestions"`
	}
	decodeJSON(t, resp, &b)
	if b.RefNo != "R001" || b.Reports["mechanic"] == "" {
		t.Fatalf("bundle = %+v", b)
	}
	if len(b.Suggestions) != 2 || b.Suggestions[0].Code != "E1" || b.Suggestions[0].Rank != 1 {
		t.Fatalf("suggestions = %v", b.Suggestions)
	}
	// Missing bundle → 404 with error JSON.
	resp, err = c.Get(ts.URL + "/api/bundle/NOPE")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing bundle status %d", resp.StatusCode)
	}
}

func TestAPIAssign(t *testing.T) {
	ts, db := testServer(t)
	// Unauthorized without session.
	anon := client(t, ts, "")
	resp, err := anon.Post(ts.URL+"/api/bundle/R001/assign", "application/json",
		bytes.NewBufferString(`{"code":"E2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anon assign status %d", resp.StatusCode)
	}
	// With session.
	bob := client(t, ts, "bob")
	resp, err = bob.Post(ts.URL+"/api/bundle/R001/assign", "application/json",
		bytes.NewBufferString(`{"code":"E2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assign status %d", resp.StatusCode)
	}
	b, _ := bundle.Load(db, "R001")
	if b.ErrorCode != "E2" {
		t.Fatalf("code = %q", b.ErrorCode)
	}
	// Bad body.
	resp, err = bob.Post(ts.URL+"/api/bundle/R001/assign", "application/json",
		bytes.NewBufferString(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}
}

func TestAPICompare(t *testing.T) {
	ts, _ := testServer(t)
	c := client(t, ts, "")
	resp, err := c.Get(ts.URL + "/api/compare")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Source string `json:"source"`
		Total  int    `json:"total"`
		Top    []struct {
			Code     string  `json:"code"`
			Fraction float64 `json:"fraction"`
		} `json:"top"`
	}
	decodeJSON(t, resp, &out)
	if out["internal"].Total != 8 || len(out["internal"].Top) == 0 {
		t.Fatalf("internal = %+v", out["internal"])
	}
	if out["public"].Top[0].Code != "E2" {
		t.Fatalf("public top = %+v", out["public"].Top)
	}
}

func TestAuditTrail(t *testing.T) {
	ts, db := testServer(t)
	bob := client(t, ts, "bob")
	// Assign from the suggestion list (E1 is rank 1).
	resp, err := bob.PostForm(ts.URL+"/bundle/R001/assign", map[string][]string{"code": {"E1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	entries, err := RecentAssignments(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("audit entries = %d", len(entries))
	}
	e := entries[0]
	if e.RefNo != "R001" || e.Code != "E1" || e.User != "bob" ||
		e.Source != "suggestion" || e.SuggRank != 1 {
		t.Fatalf("entry = %+v", e)
	}
	// Assign a catalog-only code.
	resp, err = bob.PostForm(ts.URL+"/bundle/R001/assign", map[string][]string{"code": {"E9"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	entries, _ = RecentAssignments(db, 10)
	if len(entries) != 2 || entries[0].Source != "catalog" || entries[0].SuggRank != 0 {
		t.Fatalf("entries = %+v", entries)
	}
	// Hit-rate summary.
	fromSugg, total, meanRank, err := SuggestionHitRate(db)
	if err != nil {
		t.Fatal(err)
	}
	if fromSugg != 1 || total != 2 || meanRank != 1.0 {
		t.Fatalf("hit rate = %d/%d mean %.2f", fromSugg, total, meanRank)
	}
}

func TestAuditPageAdminOnly(t *testing.T) {
	ts, _ := testServer(t)
	bob := client(t, ts, "bob")
	resp, err := bob.Get(ts.URL + "/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("expert audit status %d", resp.StatusCode)
	}
	alice := client(t, ts, "alice")
	code, body := get(t, alice, ts.URL+"/audit")
	if code != 200 || !strings.Contains(body, "audit trail") {
		t.Fatalf("admin audit: %d", code)
	}
}

func TestAPIAuditSummaryAdminOnly(t *testing.T) {
	ts, _ := testServer(t)
	bob := client(t, ts, "bob")
	resp, err := bob.Get(ts.URL + "/api/audit/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("expert summary status %d", resp.StatusCode)
	}
	alice := client(t, ts, "alice")
	resp, err = alice.Get(ts.URL + "/api/audit/summary")
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	decodeJSON(t, resp, &out)
	if _, ok := out["assignments"]; !ok {
		t.Fatalf("summary = %v", out)
	}
}
